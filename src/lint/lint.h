// ntlint — determinism & protocol-safety static analysis for this repo.
//
// The whole reproduction rests on one property: a seeded run is a pure
// function of its seed. PR 3's simulation harness *checks* that property
// (double-run event-hash compare), but a fuzz pass can only tell you the
// schedules it tried were deterministic. ntlint enforces the property's
// preconditions at the source level, where violations are introduced.
//
// Per-file token-pattern rules (v1):
//
//   R1 nondet          banned wall-clock / ambient-entropy / threading
//                      identifiers outside src/sim/ and bench/.
//   R2 unordered-iter  iteration over std::unordered_{map,set} whose loop
//                      body lets the (seed-dependent, implementation-defined)
//                      bucket order escape into messages, hashes, encodings,
//                      or accumulated state.
//   R3 quorum-arith    literal threshold arithmetic (2f, 2f+1, f+1, n/3)
//                      outside the blessed Committee helpers — the "2f vs
//                      2f+1" slip class that breaks quorum intersection.
//   R4 codec-mismatch  an Encode/Decode pair whose field op sequences drift
//                      (silent serialize/deserialize skew).
//   R5 pointer-key     containers ordered or keyed by raw pointer value
//                      (ASLR makes the order differ run to run).
//
// Whole-repo semantic-model rules (v2, src/lint/model.h):
//
//   R6 wal-before-send     a signed message leaves the node without a
//                          Store::Sync() durability barrier earlier on the
//                          path (checked through call-graph inlining) — the
//                          double-vote-through-amnesia class.
//   R7 recover-parity      the field ops a WAL-record Persist site writes
//                          drift from what the matching Recover arm reads,
//                          or a record tag has no Recover arm at all.
//   R8 deferred-capture    a lambda handed to the Scheduler captures locals
//                          by reference, or a retry's reschedule call fails
//                          to carry mutated state by value (the
//                          RetryBroadcast stale-attempt storm class).
//   R9 registry-exhaustive a MessageTypeId with no registered message
//                          struct, a registered struct with no handler
//                          dispatch, a one-sided payload codec, or a
//                          two-sided payload codec missing from the
//                          fuzz_decode_test corpus.
//
// Findings are suppressable only with an inline annotation on the same line
// or the line above:
//
//   // ntlint:allow(<rule>[,<rule>...]): <reason>
//
// Every suppression is counted and echoed in the tool's summary, so the
// exception budget stays visible in code review.
#ifndef SRC_LINT_LINT_H_
#define SRC_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/lint/lexer.h"

namespace nt {
namespace lint {

// Rule identifiers (also the names accepted inside allow annotations).
inline constexpr const char* kRuleNondet = "nondet";
inline constexpr const char* kRuleUnorderedIter = "unordered-iter";
inline constexpr const char* kRuleQuorumArith = "quorum-arith";
inline constexpr const char* kRuleCodecMismatch = "codec-mismatch";
inline constexpr const char* kRulePointerKey = "pointer-key";
inline constexpr const char* kRuleWalBeforeSend = "wal-before-send";
inline constexpr const char* kRuleRecoverParity = "recover-parity";
inline constexpr const char* kRuleDeferredCapture = "deferred-capture";
inline constexpr const char* kRuleRegistryExhaustive = "registry-exhaustive";

// Every rule id, in R1..R9 order (drives allow parsing, SARIF metadata and
// the per-rule stale-allow accounting).
const std::vector<std::string>& AllRuleNames();

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string allow_reason;  // Set when suppressed.
  bool baselined = false;    // Matched a --baseline entry (grandfathered).
};

// One `ntlint:allow(...)` annotation, parsed from a comment.
struct AllowAnnotation {
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

struct FileReport {
  std::string path;
  std::vector<Finding> findings;  // Ordered by line.
  // Annotations that matched no finding (stale) as (line, "rule,rule").
  std::vector<std::pair<int, std::string>> unused_allows;
};

struct Summary {
  std::vector<FileReport> files;
  int total = 0;
  int suppressed = 0;
  int baselined = 0;
  // Stale allow annotations bucketed per rule name they mention.
  std::map<std::string, int> stale_by_rule;
  int stale_allows() const {
    int n = 0;
    for (const auto& [rule, count] : stale_by_rule) {
      n += count;
    }
    return n;
  }
  int unsuppressed() const { return total - suppressed; }
  // What actually gates the build: neither suppressed nor grandfathered.
  int actionable() const { return total - suppressed - baselined; }
};

// Extracts `ntlint:allow(rule[,rule...]): reason` annotations from comments.
// Unknown rule names are dropped (a typo'd rule leaves the finding live).
std::vector<AllowAnnotation> ParseAllows(const std::vector<Comment>& comments);

// Repo-relative path ("src/..." or "bench/...") so rule scoping works no
// matter where the tool is invoked from.
std::string RepoRelPath(std::string path);

// Applies allow annotations to `findings` (marks suppressed / used) and
// records the stale ones on the report. Shared by the per-file and the
// whole-repo drivers so suppression semantics cannot drift.
void ApplyAllows(std::vector<Finding>* findings, std::vector<AllowAnnotation>* allows,
                 FileReport* report);

// Lints one translation unit given as an in-memory string. `path` determines
// which rules apply (rule scoping is by directory, see rules.cpp); it does
// not have to exist on disk — tests lint synthetic fixtures this way.
// Runs the per-file rules (R1–R5, R8) only; the cross-file rules need the
// whole-repo model (model.h: LintRepoUnits / LintPaths).
FileReport LintSource(const std::string& path, const std::string& content);

// As LintSource, with the sibling header's content supplied so rule R2 can
// see member declarations of the .cpp being linted (may be null).
FileReport LintSourceWithCompanion(const std::string& path, const std::string& content,
                                   const std::string* companion_content);

// Reads and lints a file from disk. A missing/unreadable file yields a
// single finding so CI cannot silently skip anything.
FileReport LintFile(const std::string& path);

// Recursively collects the .h/.cpp/.cc files under `root` (or `root` itself
// if it is a regular file), sorted lexicographically so runs are
// reproducible. Hidden directories and build trees ("build*") are skipped.
std::vector<std::string> CollectSourceFiles(const std::string& root);

// Lints every path (files or directories) and aggregates, including the
// whole-repo semantic-model rules R6–R9 (implemented in model.cpp).
Summary LintPaths(const std::vector<std::string>& paths);

// Renders findings + the suppression report to a string (the CLI output).
std::string FormatSummary(const Summary& summary, bool verbose);

// Renders the summary as a SARIF 2.1.0 log (one run, rules R1–R9 declared in
// tool.driver.rules; suppressed findings carry an inSource suppression,
// baselined ones an external suppression).
std::string FormatSarif(const Summary& summary);

// ---- baseline support ------------------------------------------------------
// A baseline grandfathers the findings present when a rule is introduced so
// the rule can land without a flag day. Entries match on (rule, repo-relative
// path, message) — deliberately not the line number, which churns on every
// edit.

// One line per finding: "rule\tpath\tmessage", sorted. Round-trips through
// ParseBaseline.
std::string WriteBaseline(const Summary& summary);

// Parses WriteBaseline output (or a hand-edited file). Blank lines and lines
// starting with '#' are skipped.
std::multiset<std::string> ParseBaseline(const std::string& text);

// Marks every unsuppressed finding with a matching baseline entry as
// baselined (each entry is consumed at most once) and updates the counters.
void MarkBaseline(Summary* summary, std::multiset<std::string> baseline);

}  // namespace lint
}  // namespace nt

#endif  // SRC_LINT_LINT_H_
