// ntlint — determinism & protocol-safety static analysis for this repo.
//
// The whole reproduction rests on one property: a seeded run is a pure
// function of its seed. PR 3's simulation harness *checks* that property
// (double-run event-hash compare), but a fuzz pass can only tell you the
// schedules it tried were deterministic. ntlint enforces the property's
// preconditions at the source level, where violations are introduced:
//
//   R1 nondet          banned wall-clock / ambient-entropy / threading
//                      identifiers outside src/sim/ and bench/.
//   R2 unordered-iter  iteration over std::unordered_{map,set} whose loop
//                      body lets the (seed-dependent, implementation-defined)
//                      bucket order escape into messages, hashes, encodings,
//                      or accumulated state.
//   R3 quorum-arith    literal threshold arithmetic (2f, 2f+1, f+1, n/3)
//                      outside the blessed Committee helpers — the "2f vs
//                      2f+1" slip class that breaks quorum intersection.
//   R4 codec-mismatch  an Encode/Decode pair whose field op sequences drift
//                      (silent serialize/deserialize skew).
//   R5 pointer-key     containers ordered or keyed by raw pointer value
//                      (ASLR makes the order differ run to run).
//
// Findings are suppressable only with an inline annotation on the same line
// or the line above:
//
//   // ntlint:allow(<rule>[,<rule>...]): <reason>
//
// Every suppression is counted and echoed in the tool's summary, so the
// exception budget stays visible in code review.
#ifndef SRC_LINT_LINT_H_
#define SRC_LINT_LINT_H_

#include <string>
#include <vector>

namespace nt {
namespace lint {

// Rule identifiers (also the names accepted inside allow annotations).
inline constexpr const char* kRuleNondet = "nondet";
inline constexpr const char* kRuleUnorderedIter = "unordered-iter";
inline constexpr const char* kRuleQuorumArith = "quorum-arith";
inline constexpr const char* kRuleCodecMismatch = "codec-mismatch";
inline constexpr const char* kRulePointerKey = "pointer-key";

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string allow_reason;  // Set when suppressed.
};

struct FileReport {
  std::string path;
  std::vector<Finding> findings;  // Ordered by line.
  // Annotations that matched no finding (likely stale) — reported, not fatal.
  std::vector<std::pair<int, std::string>> unused_allows;
};

struct Summary {
  std::vector<FileReport> files;
  int total = 0;
  int suppressed = 0;
  int unsuppressed() const { return total - suppressed; }
};

// Lints one translation unit given as an in-memory string. `path` determines
// which rules apply (rule scoping is by directory, see rules.cpp); it does
// not have to exist on disk — tests lint synthetic fixtures this way.
FileReport LintSource(const std::string& path, const std::string& content);

// As LintSource, with the sibling header's content supplied so rule R2 can
// see member declarations of the .cpp being linted (may be null).
FileReport LintSourceWithCompanion(const std::string& path, const std::string& content,
                                   const std::string* companion_content);

// Reads and lints a file from disk. A missing/unreadable file yields a
// single finding so CI cannot silently skip anything.
FileReport LintFile(const std::string& path);

// Recursively collects the .h/.cpp/.cc files under `root` (or `root` itself
// if it is a regular file), sorted lexicographically so runs are
// reproducible. Hidden directories and build trees ("build*") are skipped.
std::vector<std::string> CollectSourceFiles(const std::string& root);

// Lints every path (files or directories) and aggregates.
Summary LintPaths(const std::vector<std::string>& paths);

// Renders findings + the suppression report to a string (the CLI output).
std::string FormatSummary(const Summary& summary, bool verbose);

}  // namespace lint
}  // namespace nt

#endif  // SRC_LINT_LINT_H_
