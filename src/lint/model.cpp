#include "src/lint/model.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "src/lint/rules.h"

namespace nt {
namespace lint {
namespace {

using Toks = std::vector<Token>;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

size_t MatchForward(const Toks& t, size_t open, const char* oc, const char* cc) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct) {
      if (t[i].text == oc) {
        ++depth;
      } else if (t[i].text == cc) {
        if (--depth == 0) {
          return i;
        }
      }
    }
  }
  return t.size();
}

// Index of the punctuation opening the bracket closed at `close` (which must
// hold `cc`). Returns t.size() when unbalanced.
size_t MatchBackward(const Toks& t, size_t close, const char* oc, const char* cc) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (t[i].kind == TokKind::kPunct) {
      if (t[i].text == cc) {
        ++depth;
      } else if (t[i].text == oc) {
        if (--depth == 0) {
          return i;
        }
      }
    }
  }
  return t.size();
}

bool IsMemberAccess(const Toks& t, size_t i) {
  if (i == 0) {
    return false;
  }
  if (t[i - 1].text == ".") {
    return true;
  }
  return i >= 2 && t[i - 1].text == ">" && t[i - 2].text == "-";
}

// ------------------------------------------------------------ structure scan
//
// One pass over the token stream producing every function/method *definition*
// (with its body span) and every struct/class body span. This is the spine of
// the semantic model: effects, WAL sites, registrations and R8 all hang off
// these spans.

struct FnSpan {
  std::string owner;  // "" for free functions.
  std::string name;
  int line = 0;
  size_t open = 0;   // Index of the body '{'.
  size_t close = 0;  // Index of the matching '}' (t.size() when unbalanced).
};

struct StructSpan {
  std::string name;
  int line = 0;
  size_t open = 0;
  size_t close = 0;
};

// Names that look like `name ( ... ) {` but open control-flow blocks, not
// function bodies.
const std::set<std::string>& NotFnNames() {
  static const std::set<std::string> s = {
      "if",     "for",     "while",    "switch",   "catch",    "return",
      "sizeof", "alignof", "decltype", "new",      "delete",   "do",
      "else",   "try",     "operator", "constexpr", "noexcept", "alignas",
      "requires"};
  return s;
}

bool IsTrailingQual(const Token& t) {
  return t.kind == TokKind::kIdent &&
         (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
          t.text == "final" || t.text == "mutable");
}

// Tries to interpret the '{' at `brace` as a function body. Peels
// constructor-initializer groups (`: a_(x), b_{y} {`) right to left until the
// signature's parameter parens are found.
bool DetectFunction(const Toks& t, size_t brace, const std::string& scope_name, FnSpan* out) {
  size_t j = brace;
  while (j > 0 && IsTrailingQual(t[j - 1])) {
    --j;
  }
  if (j == 0) {
    return false;
  }
  --j;
  for (int guard = 0; guard < 64; ++guard) {
    if (t[j].kind != TokKind::kPunct || (t[j].text != ")" && t[j].text != "}")) {
      return false;
    }
    const bool parens = t[j].text == ")";
    size_t opener = MatchBackward(t, j, parens ? "(" : "{", parens ? ")" : "}");
    if (opener == 0 || opener >= t.size()) {
      return false;
    }
    size_t name_idx = opener - 1;
    if (t[name_idx].kind != TokKind::kIdent) {
      return false;
    }
    if (name_idx >= 1 && t[name_idx - 1].text == ",") {
      // Member initializer: the previous initializer's group ends just left
      // of the comma.
      if (name_idx < 2) {
        return false;
      }
      j = name_idx - 2;
      continue;
    }
    if (name_idx >= 1 && t[name_idx - 1].text == ":") {
      // First member initializer: the signature's ')' sits left of the ':'.
      if (name_idx < 2) {
        return false;
      }
      j = name_idx - 2;
      continue;
    }
    if (!parens) {
      return false;  // A brace group can only be an initializer, peeled above.
    }
    const std::string& name = t[name_idx].text;
    if (NotFnNames().count(name) > 0) {
      return false;
    }
    out->name = name;
    out->line = t[name_idx].line;
    if (name_idx >= 2 && t[name_idx - 1].text == "::" &&
        t[name_idx - 2].kind == TokKind::kIdent) {
      out->owner = t[name_idx - 2].text;
    } else {
      out->owner = scope_name;
    }
    out->open = brace;
    out->close = MatchForward(t, brace, "{", "}");
    return true;
  }
  return false;
}

void ScanStructure(const Toks& t, std::vector<FnSpan>* fns, std::vector<StructSpan>* structs) {
  struct OpenScope {
    std::string name;
    int depth;
    size_t struct_idx;
  };
  std::vector<OpenScope> open;
  int depth = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) {
      continue;
    }
    if (t[i].text == "{") {
      bool is_record = false;
      // R4-style lookback (bounded by statement punctuation) for
      // `struct X ... {` / `class X ... {`. `enum class` is not a scope.
      for (size_t k = i; k-- > 0;) {
        const std::string& tx = t[k].text;
        if (tx == ";" || tx == "}" || tx == "{" || tx == ")") {
          break;
        }
        if ((IsIdent(t[k], "struct") || IsIdent(t[k], "class")) &&
            !(k > 0 && IsIdent(t[k - 1], "enum")) && k + 1 < t.size() &&
            t[k + 1].kind == TokKind::kIdent) {
          open.push_back(OpenScope{t[k + 1].text, depth, structs->size()});
          structs->push_back(StructSpan{t[k + 1].text, t[k + 1].line, i, t.size()});
          is_record = true;
          break;
        }
      }
      if (!is_record) {
        FnSpan fn;
        const std::string scope = open.empty() ? "" : open.back().name;
        if (DetectFunction(t, i, scope, &fn)) {
          fns->push_back(std::move(fn));
        }
      }
      ++depth;
    } else if (t[i].text == "}") {
      --depth;
      if (!open.empty() && open.back().depth == depth) {
        (*structs)[open.back().struct_idx].close = i;
        open.pop_back();
      }
    }
  }
}

// ------------------------------------------------------------- lambda spans

struct LambdaSpan {
  size_t intro = 0;      // '['
  size_t cap_close = 0;  // ']'
  size_t body_open = 0;  // '{'
  size_t body_close = 0; // '}'
};

// Is the '[' at `i` a lambda introducer (vs a subscript or an attribute)?
bool LambdaAt(const Toks& t, size_t i, LambdaSpan* out) {
  if (t[i].kind != TokKind::kPunct || t[i].text != "[") {
    return false;
  }
  if (i > 0) {
    const Token& p = t[i - 1];
    if (p.kind == TokKind::kIdent && p.text != "return") {
      return false;  // arr[i]
    }
    if (p.kind == TokKind::kNumber || p.kind == TokKind::kString) {
      return false;
    }
    if (p.kind == TokKind::kPunct && (p.text == ")" || p.text == "]")) {
      return false;  // f(x)[i], a[i][j]
    }
  }
  size_t cap_close = MatchForward(t, i, "[", "]");
  if (cap_close >= t.size()) {
    return false;
  }
  size_t j = cap_close + 1;
  if (j < t.size() && t[j].text == "(") {
    j = MatchForward(t, j, "(", ")");
    if (j >= t.size()) {
      return false;
    }
    ++j;
  }
  while (j < t.size() && t[j].kind == TokKind::kIdent &&
         (t[j].text == "mutable" || t[j].text == "noexcept" || t[j].text == "constexpr")) {
    ++j;
  }
  if (j + 1 < t.size() && t[j].text == "-" && t[j + 1].text == ">") {
    j += 2;  // Trailing return type: skip the (simple) type name.
    while (j < t.size() && (t[j].kind == TokKind::kIdent || t[j].text == "::")) {
      ++j;
    }
  }
  if (j >= t.size() || t[j].text != "{") {
    return false;
  }
  out->intro = i;
  out->cap_close = cap_close;
  out->body_open = j;
  out->body_close = MatchForward(t, j, "{", "}");
  return true;
}

// Outermost lambda spans inside [first, last).
std::vector<LambdaSpan> CollectLambdas(const Toks& t, size_t first, size_t last) {
  std::vector<LambdaSpan> spans;
  for (size_t i = first; i < last && i < t.size();) {
    LambdaSpan span;
    if (LambdaAt(t, i, &span) && span.body_close < t.size()) {
      spans.push_back(span);
      i = span.body_close + 1;
    } else {
      ++i;
    }
  }
  return spans;
}

// ------------------------------------------------------------ effect stream
//
// The R6 effect alphabet. Deferred work (lambda bodies) is excluded: a retry
// closure's Send fires on a later scheduler tick, after the function's own
// Sync has long since returned.

void ExtractEffects(const Toks& t, const FnSpan& fn, std::vector<FactEffect>* out) {
  if (fn.close >= t.size()) {
    return;
  }
  std::vector<LambdaSpan> lambdas = CollectLambdas(t, fn.open + 1, fn.close);
  size_t li = 0;
  for (size_t i = fn.open + 1; i < fn.close; ++i) {
    if (li < lambdas.size() && i == lambdas[li].intro) {
      i = lambdas[li].body_close;
      ++li;
      continue;
    }
    if (t[i].kind != TokKind::kIdent || i + 1 >= t.size() || t[i + 1].text != "(") {
      continue;
    }
    const std::string& nm = t[i].text;
    FactEffect e;
    e.line = t[i].line;
    if (nm == "Sync") {
      e.kind = 'y';
    } else if (nm == "Sign") {
      e.kind = 'g';
    } else if (StartsWith(nm, "Send") || StartsWith(nm, "Broadcast")) {
      e.kind = 's';
    } else if (!IsMemberAccess(t, i) && (i == 0 || t[i - 1].text != "::") &&
               std::isupper(static_cast<unsigned char>(nm[0]))) {
      e.kind = 'c';  // Bare capitalized call: own-class method or free fn.
      e.arg = nm;
    } else {
      continue;
    }
    out->push_back(std::move(e));
  }
}

// --------------------------------------------------------------- codec ops
//
// R4's op extractor plus free codec helpers (EncodeQc/DecodeQc style): WAL
// records serialize through the same Writer/Reader vocabulary as the wire
// codecs, so Persist/Recover parity reuses the R4 op alphabet.

const std::map<std::string, std::string>& PutKinds() {
  static const std::map<std::string, std::string> m = {
      {"PutU8", "u8"},   {"PutU16", "u16"},   {"PutU32", "u32"}, {"PutU64", "u64"},
      {"PutI64", "i64"}, {"PutBool", "bool"}, {"PutVar", "var"}, {"PutString", "str"},
      {"PutRaw", "raw"}};
  return m;
}

const std::map<std::string, std::string>& GetKinds() {
  static const std::map<std::string, std::string> m = {
      {"GetU8", "u8"},   {"GetU16", "u16"},   {"GetU32", "u32"}, {"GetU64", "u64"},
      {"GetI64", "i64"}, {"GetBool", "bool"}, {"GetVar", "var"}, {"GetString", "str"},
      {"GetRaw", "raw"}, {"GetArray", "raw"}};
  return m;
}

std::vector<FactOp> ExtractModelOps(const Toks& t, size_t first, size_t last, bool encode_side) {
  std::vector<FactOp> ops;
  for (size_t i = first; i <= last && i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || i == 0) {
      continue;
    }
    const std::string& prev = t[i - 1].text;
    const bool called = i + 1 < t.size() &&
                        (t[i + 1].text == "(" || (t[i].text == "GetArray" && t[i + 1].text == "<"));
    if (!called) {
      continue;
    }
    if (IsMemberAccess(t, i)) {
      const auto& kinds = encode_side ? PutKinds() : GetKinds();
      auto it = kinds.find(t[i].text);
      if (it != kinds.end()) {
        ops.push_back(FactOp{it->second, t[i].line});
        continue;
      }
      if (encode_side && t[i].text == "Encode") {
        ops.push_back(FactOp{"sub", t[i].line});
      }
    } else if (prev == "::" && !encode_side && t[i].text == "Decode") {
      ops.push_back(FactOp{"sub", t[i].line});
    } else if (prev != "::" && t[i].text.size() > 6 &&
               (encode_side ? StartsWith(t[i].text, "Encode") : StartsWith(t[i].text, "Decode"))) {
      ops.push_back(FactOp{"sub", t[i].line});  // EncodeQc(w, qc) / DecodeQc(r)
    }
  }
  return ops;
}

// ----------------------------------------------------- WAL persist / recover

// A Persist site is a function that writes a leading tag byte and hands the
// buffer to the store. Key-derivation helpers (VoteKey, TuskCommitKey, ...)
// also PutU8 a char into a digest preimage but never call Put(...)+Take(),
// which is what excludes them.
void ScanPersist(const Toks& t, const FnSpan& fn, std::vector<FactRecord>* out) {
  if (fn.close >= t.size()) {
    return;
  }
  bool has_put = false;
  bool has_take = false;
  size_t tag_idx = t.size();
  for (size_t i = fn.open + 1; i < fn.close; ++i) {
    if (t[i].kind != TokKind::kIdent || i + 1 >= t.size() || t[i + 1].text != "(") {
      continue;
    }
    if (!IsMemberAccess(t, i)) {
      continue;
    }
    if (t[i].text == "Put") {
      has_put = true;
    } else if (t[i].text == "Take") {
      has_take = true;
    } else if (t[i].text == "PutU8" && tag_idx == t.size() && i + 2 < t.size() &&
               t[i + 2].kind == TokKind::kChar && t[i + 2].text.size() >= 3) {
      tag_idx = i;
    }
  }
  if (!has_put || !has_take || tag_idx == t.size()) {
    return;
  }
  FactRecord rec;
  rec.owner = fn.owner;
  rec.tag = t[tag_idx + 2].text[1];
  rec.line = t[tag_idx].line;
  rec.ops = ExtractModelOps(t, tag_idx + 4, fn.close - 1, /*encode_side=*/true);
  out->push_back(std::move(rec));
}

// Recover arms live in functions named exactly "Recover", either as
// `case 'X':` switch arms or as a `value[0] == 'X'` / `!= 'X'` guard.
void ScanRecovers(const Toks& t, const FnSpan& fn, std::vector<FactRecord>* out) {
  if (fn.name != "Recover" || fn.close >= t.size()) {
    return;
  }
  bool found_arm = false;
  for (size_t i = fn.open + 1; i + 2 < fn.close; ++i) {
    if (!IsIdent(t[i], "case") || t[i + 1].kind != TokKind::kChar ||
        t[i + 1].text.size() < 3 || t[i + 2].text != ":") {
      continue;
    }
    size_t arm_end = fn.close - 1;
    for (size_t k = i + 3; k < fn.close; ++k) {
      if (IsIdent(t[k], "case") || IsIdent(t[k], "default")) {
        arm_end = k - 1;
        break;
      }
    }
    FactRecord rec;
    rec.owner = fn.owner;
    rec.tag = t[i + 1].text[1];
    rec.line = t[i].line;
    rec.ops = ExtractModelOps(t, i + 3, arm_end, /*encode_side=*/false);
    out->push_back(std::move(rec));
    found_arm = true;
  }
  if (found_arm) {
    return;
  }
  // Guard form: a single-record store (`if (value[0] != 'N') continue;`).
  for (size_t i = fn.open + 3; i < fn.close; ++i) {
    if (t[i].kind != TokKind::kChar || t[i].text.size() < 3) {
      continue;
    }
    if (t[i - 1].text != "=" || (t[i - 2].text != "=" && t[i - 2].text != "!")) {
      continue;
    }
    FactRecord rec;
    rec.owner = fn.owner;
    rec.tag = t[i].text[1];
    rec.line = t[i].line;
    rec.ops = ExtractModelOps(t, i + 1, fn.close - 1, /*encode_side=*/false);
    out->push_back(std::move(rec));
    return;
  }
}

// ------------------------------------------------------------ registry facts

void ScanEnumerators(const Toks& t, std::vector<FactEnumerator>* out) {
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t[i], "enum")) {
      continue;
    }
    size_t j = i + 1;
    if (j < t.size() && (IsIdent(t[j], "class") || IsIdent(t[j], "struct"))) {
      ++j;
    }
    if (j >= t.size() || !IsIdent(t[j], "MessageTypeId")) {
      continue;
    }
    while (j < t.size() && t[j].text != "{" && t[j].text != ";") {
      ++j;  // Skips the `: uint8_t` base clause.
    }
    if (j >= t.size() || t[j].text != "{") {
      continue;
    }
    size_t close = MatchForward(t, j, "{", "}");
    bool expecting = true;
    int depth = 0;
    for (size_t k = j + 1; k < close && k < t.size(); ++k) {
      if (t[k].kind == TokKind::kPunct) {
        const std::string& tx = t[k].text;
        if (tx == "(" || tx == "{" || tx == "<") {
          ++depth;
        } else if (tx == ")" || tx == "}" || tx == ">") {
          --depth;
        } else if (tx == "," && depth == 0) {
          expecting = true;
        }
        continue;
      }
      if (expecting && t[k].kind == TokKind::kIdent && depth == 0) {
        out->push_back(FactEnumerator{t[k].text, t[k].line});
        expecting = false;
      }
    }
    return;  // One MessageTypeId enum per repo.
  }
}

// `return MessageTypeId::kX;` — the TypeId() body of a registered message
// struct. (`case MessageTypeId::kX:` in the name table is preceded by `case`,
// not `return`, so it does not match.)
void ScanRegistrations(const Toks& t, const std::vector<FnSpan>& fns,
                       const std::vector<StructSpan>& structs,
                       std::vector<FactRegistration>* out) {
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (!IsIdent(t[i], "return") || !IsIdent(t[i + 1], "MessageTypeId") ||
        t[i + 2].text != "::" || t[i + 3].kind != TokKind::kIdent) {
      continue;
    }
    std::string struct_name;
    size_t best = t.size();
    for (const StructSpan& s : structs) {
      if (s.open < i && i < s.close && s.close - s.open < best) {
        best = s.close - s.open;
        struct_name = s.name;
      }
    }
    if (struct_name.empty()) {
      // Out-of-line definition `MessageTypeId MsgX::TypeId() ...`.
      for (const FnSpan& fn : fns) {
        if (fn.open < i && i < fn.close && !fn.owner.empty()) {
          struct_name = fn.owner;
          break;
        }
      }
    }
    if (!struct_name.empty()) {
      out->push_back(FactRegistration{t[i + 3].text, struct_name, t[i + 3].line});
    }
  }
}

void ScanHandlerCasts(const Toks& t, std::vector<std::string>* out) {
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(IsIdent(t[i], "dynamic_pointer_cast") || IsIdent(t[i], "dynamic_cast")) ||
        t[i + 1].text != "<") {
      continue;
    }
    size_t j = i + 2;
    while (j < t.size() && IsIdent(t[j], "const")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent) {
      out->push_back(t[j].text);
    }
  }
}

// Capitalized type mentions inside a registered message struct's body; the
// model filters them against codec owners, so over-collection is harmless.
void ScanPayloadRefs(const Toks& t, const std::vector<StructSpan>& structs,
                     const std::vector<FactRegistration>& regs,
                     std::vector<FactPayloadRef>* out) {
  std::set<std::string> reg_structs;
  for (const FactRegistration& r : regs) {
    reg_structs.insert(r.struct_name);
  }
  for (const StructSpan& s : structs) {
    if (reg_structs.count(s.name) == 0 || s.close >= t.size()) {
      continue;
    }
    std::set<std::string> seen;
    for (size_t k = s.open + 1; k < s.close; ++k) {
      if (t[k].kind != TokKind::kIdent ||
          !std::isupper(static_cast<unsigned char>(t[k].text[0])) || t[k].text == s.name) {
        continue;
      }
      if (k + 1 < t.size() && (t[k + 1].text == "(" || t[k + 1].text == "::")) {
        continue;  // Constructor-style call / scope qualifier, not a field type.
      }
      if (IsMemberAccess(t, k) || (k > 0 && t[k - 1].text == "::")) {
        continue;
      }
      if (seen.insert(t[k].text).second) {
        out->push_back(FactPayloadRef{s.name, t[k].text});
      }
    }
  }
}

}  // namespace

// ------------------------------------------------------- R8 deferred-capture
//
// One function's tokens suffice, so this runs in pass 1. Two legs:
//   (a) a lambda handed to a Schedule* call captures by reference — the
//       callback outlives this stack frame, so the reference dangles when the
//       scheduler fires it.
//   (b) a retry lambda reschedules its own enclosing function but passes a
//       literal constant where a sibling argument carries captured-by-value
//       state — every attempt re-runs with the same value (the PR 2
//       RetryBroadcast stale-attempt storm: backoff never grew because the
//       attempt counter was re-seeded to 0 on every hop).
// Re-reading *members* through a captured `this` is the repo's fixed design
// (the member is the source of truth, fresh at fire time) and stays silent.
std::vector<Finding> RunDeferredCapture(const std::string& rel_path, const LexedFile& lex) {
  (void)rel_path;  // Applies everywhere a Scheduler is in reach.
  const Toks& t = lex.tokens;
  std::vector<FnSpan> fns;
  std::vector<StructSpan> structs;
  ScanStructure(t, &fns, &structs);
  std::vector<Finding> out;
  for (const FnSpan& fn : fns) {
    if (fn.close >= t.size()) {
      continue;
    }
    for (size_t i = fn.open + 1; i < fn.close; ++i) {
      if (t[i].kind != TokKind::kIdent || !StartsWith(t[i].text, "Schedule") ||
          i + 1 >= t.size() || t[i + 1].text != "(") {
        continue;
      }
      size_t call_close = MatchForward(t, i + 1, "(", ")");
      if (call_close >= t.size()) {
        continue;
      }
      LambdaSpan lam;
      bool found = false;
      for (size_t k = i + 2; k < call_close; ++k) {
        if (t[k].kind == TokKind::kPunct && t[k].text == "[" && LambdaAt(t, k, &lam) &&
            lam.body_close < t.size()) {
          found = true;
          break;
        }
      }
      if (!found) {
        continue;
      }
      // Parse the capture list.
      bool ref_default = false;
      bool val_default = false;
      std::vector<std::string> ref_names;
      std::set<std::string> val_names;
      for (size_t k = lam.intro + 1; k < lam.cap_close;) {
        if (t[k].text == "&") {
          if (k + 1 < lam.cap_close && t[k + 1].kind == TokKind::kIdent) {
            ref_names.push_back(t[k + 1].text);
            k += 2;
          } else {
            ref_default = true;
            ++k;
          }
        } else if (t[k].text == "=") {
          val_default = true;
          ++k;
        } else if (t[k].kind == TokKind::kIdent) {
          if (t[k].text == "this") {
            ++k;
          } else if (k + 1 < lam.cap_close && t[k + 1].text == "=") {
            val_names.insert(t[k].text);  // Init-capture `alive = alive_`.
            int d = 0;
            k += 2;
            while (k < lam.cap_close) {
              const std::string& tx = t[k].text;
              if (t[k].kind == TokKind::kPunct) {
                if (tx == "(" || tx == "[" || tx == "{" || tx == "<") {
                  ++d;
                } else if (tx == ")" || tx == "]" || tx == "}" || tx == ">") {
                  --d;
                } else if (tx == "," && d == 0) {
                  break;
                }
              }
              ++k;
            }
          } else {
            val_names.insert(t[k].text);
            ++k;
          }
        } else {
          ++k;
        }
      }
      if (ref_default || !ref_names.empty()) {
        Finding f;
        f.rule = kRuleDeferredCapture;
        f.line = t[lam.intro].line;
        std::string what;
        if (ref_default) {
          what = "by reference ([&])";
        } else {
          for (const std::string& n : ref_names) {
            what += (what.empty() ? "'" : ", '") + n + "'";
          }
          what += " by reference";
        }
        f.message = "lambda scheduled via " + t[i].text + "(...) captures " + what +
                    " — the callback outlives this stack frame, so the reference dangles (or "
                    "silently aliases mutated state) when the scheduler fires; capture by value";
        out.push_back(std::move(f));
        continue;  // One finding per scheduled lambda.
      }
      // Self-reschedule leg.
      for (size_t k = lam.body_open + 1; k < lam.body_close; ++k) {
        if (t[k].kind != TokKind::kIdent || t[k].text != fn.name || k + 1 >= t.size() ||
            t[k + 1].text != "(") {
          continue;
        }
        if (k >= 1 && t[k - 1].text == ".") {
          continue;  // other.Name(...): a different object's method.
        }
        if (k >= 3 && t[k - 1].text == ">" && t[k - 2].text == "-" && !IsIdent(t[k - 3], "this")) {
          continue;
        }
        size_t rc = MatchForward(t, k + 1, "(", ")");
        if (rc >= t.size()) {
          continue;
        }
        struct Arg {
          bool has_ident = false;
          bool captured = false;
          bool nonempty = false;
        };
        std::vector<Arg> args;
        Arg cur;
        int d = 0;
        for (size_t m = k + 2; m < rc; ++m) {
          if (t[m].kind == TokKind::kPunct) {
            const std::string& tx = t[m].text;
            if (tx == "(" || tx == "[" || tx == "{" || tx == "<") {
              ++d;
            } else if (tx == ")" || tx == "]" || tx == "}" || tx == ">") {
              --d;
            } else if (tx == "," && d == 0) {
              args.push_back(cur);
              cur = Arg{};
              continue;
            }
          }
          cur.nonempty = true;
          if (t[m].kind == TokKind::kIdent && t[m].text != "true" && t[m].text != "false" &&
              t[m].text != "nullptr" && t[m].text != "this") {
            cur.has_ident = true;
            if (val_names.count(t[m].text) > 0) {
              cur.captured = true;
            }
          }
        }
        if (cur.nonempty) {
          args.push_back(cur);
        }
        bool sibling_captured = false;
        for (const Arg& a : args) {
          if (a.captured || (val_default && a.has_ident)) {
            sibling_captured = true;
          }
        }
        bool has_literal_only = false;
        for (const Arg& a : args) {
          if (a.nonempty && !a.has_ident) {
            has_literal_only = true;
          }
        }
        if (has_literal_only && sibling_captured) {
          Finding f;
          f.rule = kRuleDeferredCapture;
          f.line = t[k].line;
          f.message = "self-reschedule " + fn.name +
                      "(...) passes a literal constant where per-attempt state should advance — "
                      "every retry re-runs with the same value (the RetryBroadcast stale-attempt "
                      "storm); advance the captured copy and pass it on";
          out.push_back(std::move(f));
        }
        break;  // One reschedule per lambda is enough to judge.
      }
    }
  }
  return out;
}

// ----------------------------------------------------------- pass 1 assembly

FileFacts ExtractFacts(const std::string& path, const std::string& content,
                       const std::string* companion_content) {
  FileFacts facts;
  facts.path = path;
  facts.rel = RepoRelPath(path);
  LexedFile lex = Lex(content);
  LexedFile companion;
  if (companion_content != nullptr) {
    companion = Lex(*companion_content);
  }
  facts.findings = RunRules(facts.rel, lex, companion_content != nullptr ? &companion : nullptr);
  std::vector<Finding> deferred = RunDeferredCapture(facts.rel, lex);
  facts.findings.insert(facts.findings.end(), deferred.begin(), deferred.end());
  std::stable_sort(facts.findings.begin(), facts.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) {
                       return a.line < b.line;
                     }
                     return a.rule < b.rule;
                   });
  for (Finding& f : facts.findings) {
    f.path = path;
  }
  facts.allows = ParseAllows(lex.comments);

  const Toks& t = lex.tokens;
  std::vector<FnSpan> fns;
  std::vector<StructSpan> structs;
  ScanStructure(t, &fns, &structs);
  for (const FnSpan& fn : fns) {
    FactFunction ff;
    ff.owner = fn.owner;
    ff.name = fn.name;
    ff.line = fn.line;
    ExtractEffects(t, fn, &ff.effects);
    facts.functions.push_back(std::move(ff));
    ScanPersist(t, fn, &facts.persists);
    ScanRecovers(t, fn, &facts.recovers);
    if ((fn.name == "Encode" || fn.name == "Decode") && !fn.owner.empty()) {
      facts.codec_sides.push_back(FactCodecSide{fn.owner, fn.name == "Encode", fn.line});
    }
  }
  ScanEnumerators(t, &facts.enumerators);
  ScanRegistrations(t, fns, structs, &facts.registrations);
  ScanHandlerCasts(t, &facts.handler_casts);
  ScanPayloadRefs(t, structs, facts.registrations, &facts.payload_refs);
  return facts;
}

FileFacts ExtractFactsFromDisk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    FileFacts facts;
    facts.path = path;
    facts.rel = RepoRelPath(path);
    Finding f;
    f.rule = "io-error";
    f.path = path;
    f.line = 0;
    f.message = "cannot read file";
    facts.findings.push_back(std::move(f));
    return facts;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string companion_content;
  bool have_companion = false;
  std::filesystem::path p(path);
  if (p.extension() == ".cpp" || p.extension() == ".cc") {
    std::filesystem::path header = p;
    header.replace_extension(".h");
    std::ifstream hin(header, std::ios::binary);
    if (hin) {
      std::stringstream hbuf;
      hbuf << hin.rdbuf();
      companion_content = hbuf.str();
      have_companion = true;
    }
  }
  return ExtractFacts(path, buf.str(), have_companion ? &companion_content : nullptr);
}

// ------------------------------------------------------------- serialization
//
// Tab-separated records, one per line; 'U' opens a new file block. This is
// the wire format between forked --jobs workers and the parent; the parent
// re-assembles FileFacts in file order, so the merged model (and therefore
// the output) is byte-identical to a sequential run.

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += s[i];
    }
  }
  return out;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(Unescape(line.substr(start)));
      break;
    }
    fields.push_back(Unescape(line.substr(start, tab - start)));
    start = tab + 1;
  }
  return fields;
}

std::string OpsField(const std::vector<FactOp>& ops) {
  if (ops.empty()) {
    return "-";
  }
  std::string out;
  for (const FactOp& op : ops) {
    if (!out.empty()) {
      out += ';';
    }
    out += op.kind + "@" + std::to_string(op.line);
  }
  return out;
}

bool ParseOpsField(const std::string& field, std::vector<FactOp>* ops) {
  if (field == "-") {
    return true;
  }
  std::stringstream ss(field);
  std::string item;
  while (std::getline(ss, item, ';')) {
    size_t at = item.rfind('@');
    if (at == std::string::npos || at == 0) {
      return false;
    }
    ops->push_back(FactOp{item.substr(0, at), std::atoi(item.c_str() + at + 1)});
  }
  return true;
}

void EmitRecordLine(std::ostringstream& out, char head, const FactRecord& r) {
  out << head << '\t' << Escape(r.owner) << '\t' << static_cast<int>(r.tag) << '\t' << r.line
      << '\t' << OpsField(r.ops) << '\n';
}

bool ParseRecordLine(const std::vector<std::string>& f, FactRecord* r) {
  if (f.size() != 5) {
    return false;
  }
  r->owner = f[1];
  r->tag = static_cast<char>(std::atoi(f[2].c_str()));
  r->line = std::atoi(f[3].c_str());
  return ParseOpsField(f[4], &r->ops);
}

}  // namespace

std::string SerializeFacts(const FileFacts& facts) {
  std::ostringstream out;
  out << "U\t" << Escape(facts.path) << '\t' << Escape(facts.rel) << '\n';
  for (const Finding& f : facts.findings) {
    out << "F\t" << Escape(f.rule) << '\t' << f.line << '\t' << Escape(f.message) << '\n';
  }
  for (const AllowAnnotation& a : facts.allows) {
    std::string rules;
    for (const std::string& r : a.rules) {
      rules += (rules.empty() ? "" : ",") + r;
    }
    out << "A\t" << a.line << '\t' << Escape(rules) << '\t' << Escape(a.reason) << '\n';
  }
  for (const FactFunction& fn : facts.functions) {
    out << "N\t" << Escape(fn.owner) << '\t' << Escape(fn.name) << '\t' << fn.line << '\n';
    for (const FactEffect& e : fn.effects) {
      out << "E\t" << e.kind << '\t' << e.line << '\t' << Escape(e.arg) << '\n';
    }
  }
  for (const FactRecord& r : facts.persists) {
    EmitRecordLine(out, 'P', r);
  }
  for (const FactRecord& r : facts.recovers) {
    EmitRecordLine(out, 'R', r);
  }
  for (const FactEnumerator& e : facts.enumerators) {
    out << "M\t" << Escape(e.name) << '\t' << e.line << '\n';
  }
  for (const FactRegistration& g : facts.registrations) {
    out << "G\t" << Escape(g.enumerator) << '\t' << Escape(g.struct_name) << '\t' << g.line
        << '\n';
  }
  for (const std::string& h : facts.handler_casts) {
    out << "H\t" << Escape(h) << '\n';
  }
  for (const FactCodecSide& c : facts.codec_sides) {
    out << "C\t" << Escape(c.owner) << '\t' << (c.encode ? 'E' : 'D') << '\t' << c.line << '\n';
  }
  for (const FactPayloadRef& y : facts.payload_refs) {
    out << "Y\t" << Escape(y.struct_name) << '\t' << Escape(y.type_name) << '\n';
  }
  return out.str();
}

bool ParseFacts(const std::string& text, std::vector<FileFacts>* out) {
  FileFacts* cur = nullptr;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> f = SplitFields(line);
    const std::string& head = f[0];
    if (head == "U") {
      if (f.size() != 3) {
        return false;
      }
      out->push_back(FileFacts{});
      cur = &out->back();
      cur->path = f[1];
      cur->rel = f[2];
      continue;
    }
    if (cur == nullptr) {
      return false;
    }
    if (head == "F") {
      if (f.size() != 4) {
        return false;
      }
      Finding fnd;
      fnd.rule = f[1];
      fnd.path = cur->path;
      fnd.line = std::atoi(f[2].c_str());
      fnd.message = f[3];
      cur->findings.push_back(std::move(fnd));
    } else if (head == "A") {
      if (f.size() != 4) {
        return false;
      }
      AllowAnnotation a;
      a.line = std::atoi(f[1].c_str());
      std::stringstream rs(f[2]);
      std::string rule;
      while (std::getline(rs, rule, ',')) {
        a.rules.push_back(rule);
      }
      a.reason = f[3];
      cur->allows.push_back(std::move(a));
    } else if (head == "N") {
      if (f.size() != 4) {
        return false;
      }
      FactFunction fn;
      fn.owner = f[1];
      fn.name = f[2];
      fn.line = std::atoi(f[3].c_str());
      cur->functions.push_back(std::move(fn));
    } else if (head == "E") {
      if (f.size() != 4 || f[1].size() != 1 || cur->functions.empty()) {
        return false;
      }
      cur->functions.back().effects.push_back(
          FactEffect{f[1][0], std::atoi(f[2].c_str()), f[3]});
    } else if (head == "P" || head == "R") {
      FactRecord r;
      if (!ParseRecordLine(f, &r)) {
        return false;
      }
      (head == "P" ? cur->persists : cur->recovers).push_back(std::move(r));
    } else if (head == "M") {
      if (f.size() != 3) {
        return false;
      }
      cur->enumerators.push_back(FactEnumerator{f[1], std::atoi(f[2].c_str())});
    } else if (head == "G") {
      if (f.size() != 4) {
        return false;
      }
      cur->registrations.push_back(FactRegistration{f[1], f[2], std::atoi(f[3].c_str())});
    } else if (head == "H") {
      if (f.size() != 2) {
        return false;
      }
      cur->handler_casts.push_back(f[1]);
    } else if (head == "C") {
      if (f.size() != 4 || (f[2] != "E" && f[2] != "D")) {
        return false;
      }
      cur->codec_sides.push_back(FactCodecSide{f[1], f[2] == "E", std::atoi(f[3].c_str())});
    } else if (head == "Y") {
      if (f.size() != 3) {
        return false;
      }
      cur->payload_refs.push_back(FactPayloadRef{f[1], f[2]});
    } else {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------ pass 2: rules

namespace {

// R6 scope: the four protocol directories where signing boundaries live.
bool InWalScope(const std::string& rel) {
  return StartsWith(rel, "src/narwhal/") || StartsWith(rel, "src/hotstuff/") ||
         StartsWith(rel, "src/tusk/") || StartsWith(rel, "src/bullshark/");
}

struct FnRef {
  const FactFunction* fn = nullptr;
  size_t file = 0;
};

using FnIndex = std::map<std::string, FnRef>;

const FnRef* LookupFn(const FnIndex& index, const std::string& owner, const std::string& name) {
  if (!owner.empty()) {
    auto it = index.find(owner + "::" + name);
    if (it != index.end()) {
      return &it->second;
    }
  }
  auto it = index.find("::" + name);
  return it != index.end() ? &it->second : nullptr;
}

struct EffRef {
  char kind = 0;
  int line = 0;
  size_t file = 0;
  int depth = 0;
};

// Flattens fn's effect sequence, inlining bare calls up to two levels deep.
// Two levels because the repo's idiom is Handler -> PersistX -> store Sync:
// one level would lose the Sync and flag every correct path.
void ExpandEffects(const FactFunction& fn, size_t file, int depth, const FnIndex& index,
                   std::set<std::string>* visited, std::vector<EffRef>* seq) {
  for (const FactEffect& e : fn.effects) {
    if (e.kind != 'c') {
      seq->push_back(EffRef{e.kind, e.line, file, depth});
      continue;
    }
    if (depth >= 2) {
      continue;
    }
    const FnRef* callee = LookupFn(index, fn.owner, e.arg);
    if (callee == nullptr) {
      continue;
    }
    std::string key = callee->fn->owner + "::" + callee->fn->name;
    if (!visited->insert(key).second) {
      continue;  // Recursion / diamond: already on this expansion path.
    }
    ExpandEffects(*callee->fn, callee->file, depth + 1, index, visited, seq);
    visited->erase(key);
  }
}

void RunWalBeforeSend(const std::vector<FileFacts>& files, std::vector<Finding>* out) {
  FnIndex index;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const FactFunction& fn : files[fi].functions) {
      index.emplace(fn.owner + "::" + fn.name, FnRef{&fn, fi});  // First def wins.
    }
  }
  std::set<std::pair<std::string, int>> reported;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    if (!InWalScope(files[fi].rel)) {
      continue;
    }
    for (const FactFunction& fn : files[fi].functions) {
      std::vector<EffRef> seq;
      std::set<std::string> visited;
      visited.insert(fn.owner + "::" + fn.name);
      ExpandEffects(fn, fi, 0, index, &visited, &seq);
      // The sign and the send must both sit in *this* function's own body
      // (depth 0). Pairing effects across inlined frames smears mutually
      // exclusive dispatch branches into one false sequence, and the depth
      // cutoff would drop a callee's persist helper and report the finding
      // at the callee's line from every two-deep caller. Inlining exists to
      // find the durability barrier ('y'), which legitimately lives inside
      // PersistX helpers — that one is counted at any depth.
      bool seen_sign = false;
      bool seen_sync = false;
      int sign_line = 0;
      for (const EffRef& e : seq) {
        if (e.kind == 'y') {
          seen_sync = true;
        } else if (e.kind == 'g' && e.depth == 0) {
          seen_sign = true;
          sign_line = e.line;
        } else if (e.kind == 's' && e.depth == 0 && seen_sign && !seen_sync) {
          if (reported.insert({files[e.file].path, e.line}).second) {
            Finding f;
            f.rule = kRuleWalBeforeSend;
            f.path = files[e.file].path;
            f.line = e.line;
            f.message =
                "signed message leaves the node with no Store::Sync() durability barrier on the "
                "path (signature at line " +
                std::to_string(sign_line) +
                "): a crash after the send but before the WAL hits disk lets the restarted "
                "validator sign a conflicting message (double-vote-through-amnesia); Sync() "
                "after the signing-boundary append, before Send/Broadcast";
            out->push_back(std::move(f));
          }
        }
      }
    }
  }
}

std::string OpName(const FactOp& op) {
  return op.kind == "sub" ? "nested codec" : op.kind;
}

void RunRecoverParity(const std::vector<FileFacts>& files, std::vector<Finding>* out) {
  using Key = std::pair<std::string, char>;
  struct RecRef {
    const FactRecord* rec = nullptr;
    size_t file = 0;
  };
  std::map<Key, RecRef> persists;
  std::map<Key, RecRef> recovers;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const FactRecord& r : files[fi].persists) {
      persists.emplace(Key{r.owner, r.tag}, RecRef{&r, fi});  // First def wins.
    }
    for (const FactRecord& r : files[fi].recovers) {
      recovers.emplace(Key{r.owner, r.tag}, RecRef{&r, fi});
    }
  }
  // Persist sites, in file order, against their Recover arm.
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const FactRecord& p : files[fi].persists) {
      auto it = recovers.find(Key{p.owner, p.tag});
      if (it == recovers.end()) {
        Finding f;
        f.rule = kRuleRecoverParity;
        f.path = files[fi].path;
        f.line = p.line;
        f.message = std::string("WAL record '") + p.tag + "' (" + p.owner +
                    ") has no matching Recover arm: state persisted before a crash is silently "
                    "dropped on restart (amnesia) — add a case '" +
                    p.tag + "' to " + p.owner + "::Recover";
        out->push_back(std::move(f));
        continue;
      }
      if (persists.at(Key{p.owner, p.tag}).rec != &p) {
        continue;  // Duplicate persist site; the first one was compared.
      }
      const FactRecord& r = *it->second.rec;
      const std::string rpath = files[it->second.file].path;
      if (p.ops.size() != r.ops.size()) {
        Finding f;
        f.rule = kRuleRecoverParity;
        f.path = rpath;
        f.line = r.line;
        f.message = p.owner + " record '" + std::string(1, p.tag) + "': Persist writes " +
                    std::to_string(p.ops.size()) + " field op(s) (line " +
                    std::to_string(p.line) + ") but Recover reads " +
                    std::to_string(r.ops.size()) +
                    " — drifted field sets corrupt every later read of the record";
        out->push_back(std::move(f));
        continue;
      }
      for (size_t k = 0; k < p.ops.size(); ++k) {
        if (p.ops[k].kind != r.ops[k].kind) {
          Finding f;
          f.rule = kRuleRecoverParity;
          f.path = rpath;
          f.line = r.ops[k].line;
          f.message = p.owner + " record '" + std::string(1, p.tag) + "': field op #" +
                      std::to_string(k + 1) + " drifts — Persist writes " + OpName(p.ops[k]) +
                      " (line " + std::to_string(p.ops[k].line) + ") but Recover reads " +
                      OpName(r.ops[k]);
          out->push_back(std::move(f));
          break;
        }
      }
    }
  }
  // Recover arms with no Persist site: dead arm or mistagged write.
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const FactRecord& r : files[fi].recovers) {
      if (persists.count(Key{r.owner, r.tag}) > 0) {
        continue;
      }
      Finding f;
      f.rule = kRuleRecoverParity;
      f.path = files[fi].path;
      f.line = r.line;
      f.message = std::string("Recover arm '") + r.tag + "' (" + r.owner +
                  ") reads a record no Persist site writes — dead arm or mistagged Persist";
      out->push_back(std::move(f));
    }
  }
}

// Names every corpus mention of a decodable type: `DecodeGarbage<T>` or
// `T::Decode`.
std::set<std::string> CorpusMentions(const std::string& content) {
  std::set<std::string> names;
  Toks t = Lex(content).tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (IsIdent(t[i], "DecodeGarbage") && t[i + 1].text == "<" &&
        t[i + 2].kind == TokKind::kIdent) {
      names.insert(t[i + 2].text);
    }
    if (t[i].kind == TokKind::kIdent && t[i + 1].text == "::" && IsIdent(t[i + 2], "Decode")) {
      names.insert(t[i].text);
    }
  }
  return names;
}

void RunRegistryExhaustive(const std::vector<FileFacts>& files, const std::string* fuzz_corpus,
                           std::vector<Finding>* out) {
  bool any_enum = false;
  bool any_reg = false;
  bool any_cast = false;
  std::set<std::string> registered_enums;
  std::set<std::string> handler_set;
  for (const FileFacts& file : files) {
    any_enum = any_enum || !file.enumerators.empty();
    any_cast = any_cast || !file.handler_casts.empty();
    for (const FactRegistration& g : file.registrations) {
      any_reg = true;
      registered_enums.insert(g.enumerator);
    }
    for (const std::string& h : file.handler_casts) {
      handler_set.insert(h);
    }
  }
  // Subset lint (e.g. `ntlint src/net`) sees a partial registry; running the
  // legs there would report the whole message table as missing.
  if (!any_enum || !any_reg || !any_cast) {
    return;
  }
  // Leg 1: every enumerator has a registered struct.
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const FactEnumerator& e : files[fi].enumerators) {
      if (e.name == "kTest" || e.name == "kCount" || registered_enums.count(e.name) > 0) {
        continue;
      }
      Finding f;
      f.rule = kRuleRegistryExhaustive;
      f.path = files[fi].path;
      f.line = e.line;
      f.message = "MessageTypeId::" + e.name +
                  " has no message struct whose TypeId() returns it — frames carrying this id "
                  "decode to nothing and are dropped as garbage";
      out->push_back(std::move(f));
    }
  }
  // Leg 2: every registered struct has a dispatch cast.
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const FactRegistration& g : files[fi].registrations) {
      if (handler_set.count(g.struct_name) > 0) {
        continue;
      }
      Finding f;
      f.rule = kRuleRegistryExhaustive;
      f.path = files[fi].path;
      f.line = g.line;
      f.message = "message struct " + g.struct_name + " (MessageTypeId::" + g.enumerator +
                  ") is registered but never dispatched — no dynamic_pointer_cast<" +
                  g.struct_name + "> handler consumes it";
      out->push_back(std::move(f));
    }
  }
  // Legs 3 and 4: payload codecs referenced by registered messages.
  struct CodecInfo {
    int enc_line = 0;
    int dec_line = 0;
    size_t enc_file = 0;
    size_t dec_file = 0;
  };
  std::map<std::string, CodecInfo> codecs;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const FactCodecSide& c : files[fi].codec_sides) {
      CodecInfo& info = codecs[c.owner];
      if (c.encode && info.enc_line == 0) {
        info.enc_line = c.line;
        info.enc_file = fi;
      } else if (!c.encode && info.dec_line == 0) {
        info.dec_line = c.line;
        info.dec_file = fi;
      }
    }
  }
  std::set<std::string> corpus_names;
  if (fuzz_corpus != nullptr) {
    corpus_names = CorpusMentions(*fuzz_corpus);
  }
  std::set<std::string> seen_types;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const FactPayloadRef& ref : files[fi].payload_refs) {
      if (!seen_types.insert(ref.type_name).second) {
        continue;
      }
      auto it = codecs.find(ref.type_name);
      if (it == codecs.end()) {
        continue;  // Not a codec-owning type (plain field, alias, enum...).
      }
      const CodecInfo& info = it->second;
      if (info.enc_line == 0 || info.dec_line == 0) {
        const bool has_enc = info.enc_line != 0;
        Finding f;
        f.rule = kRuleRegistryExhaustive;
        f.path = files[has_enc ? info.enc_file : info.dec_file].path;
        f.line = has_enc ? info.enc_line : info.dec_line;
        f.message = ref.type_name + ": payload codec referenced by registered message " +
                    ref.struct_name + " has " +
                    (has_enc ? "Encode but no Decode — the receive path cannot reconstruct the "
                               "field"
                             : "Decode but no Encode — the send path cannot emit the field");
        out->push_back(std::move(f));
        continue;
      }
      if (fuzz_corpus != nullptr && corpus_names.count(ref.type_name) == 0) {
        Finding f;
        f.rule = kRuleRegistryExhaustive;
        f.path = files[info.dec_file].path;
        f.line = info.dec_line;
        f.message = ref.type_name + " (payload of " + ref.struct_name +
                    "): two-sided codec missing from the fuzz_decode_test corpus — add "
                    "DecodeGarbage<" +
                    ref.type_name + "> so garbage frames cannot crash the decoder";
        out->push_back(std::move(f));
      }
    }
  }
}

}  // namespace

std::vector<Finding> RunModelRules(const std::vector<FileFacts>& files,
                                   const std::string* fuzz_corpus) {
  std::vector<Finding> findings;
  RunWalBeforeSend(files, &findings);
  RunRecoverParity(files, &findings);
  RunRegistryExhaustive(files, fuzz_corpus, &findings);
  return findings;
}

Summary AssembleSummary(std::vector<FileFacts> files, const std::string* fuzz_corpus) {
  Summary summary;
  std::vector<Finding> model = RunModelRules(files, fuzz_corpus);
  std::map<std::string, size_t> by_path;
  for (size_t i = 0; i < files.size(); ++i) {
    by_path.emplace(files[i].path, i);
  }
  for (Finding& f : model) {
    auto it = by_path.find(f.path);
    if (it != by_path.end()) {
      files[it->second].findings.push_back(std::move(f));
    }
  }
  for (FileFacts& file : files) {
    std::stable_sort(file.findings.begin(), file.findings.end(),
                     [](const Finding& a, const Finding& b) {
                       if (a.line != b.line) {
                         return a.line < b.line;
                       }
                       return a.rule < b.rule;
                     });
    FileReport report;
    report.path = file.path;
    ApplyAllows(&file.findings, &file.allows, &report);
    for (const Finding& f : file.findings) {
      ++summary.total;
      if (f.suppressed) {
        ++summary.suppressed;
      }
    }
    for (const AllowAnnotation& a : file.allows) {
      if (!a.used) {
        for (const std::string& rule : a.rules) {
          ++summary.stale_by_rule[rule];
        }
      }
    }
    report.findings = std::move(file.findings);
    if (!report.findings.empty() || !report.unused_allows.empty()) {
      summary.files.push_back(std::move(report));
    }
  }
  return summary;
}

Summary LintRepoUnits(const std::vector<SourceUnit>& units, const std::string* fuzz_corpus) {
  std::vector<const SourceUnit*> ordered;
  for (const SourceUnit& u : units) {
    ordered.push_back(&u);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const SourceUnit* a, const SourceUnit* b) { return a->path < b->path; });
  std::vector<FileFacts> facts;
  for (const SourceUnit* u : ordered) {
    const std::string* companion = nullptr;
    std::filesystem::path p(u->path);
    if (p.extension() == ".cpp" || p.extension() == ".cc") {
      std::filesystem::path header = p;
      header.replace_extension(".h");
      for (const SourceUnit& other : units) {
        if (other.path == header.string()) {
          companion = &other.content;
          break;
        }
      }
    }
    facts.push_back(ExtractFacts(u->path, u->content, companion));
  }
  return AssembleSummary(std::move(facts), fuzz_corpus);
}

std::string LocateFuzzCorpus(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const std::string& p : paths) {
    fs::path base(p);
    if (fs::is_regular_file(base, ec)) {
      base = base.parent_path();
    }
    for (const fs::path& cand : {base / ".." / "tests" / "fuzz_decode_test.cpp",
                                 base / "tests" / "fuzz_decode_test.cpp"}) {
      if (fs::is_regular_file(cand, ec)) {
        return cand.lexically_normal().string();
      }
    }
  }
  return "";
}

Summary LintPathsWithCorpus(const std::vector<std::string>& paths,
                            const std::string& corpus_path) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::vector<std::string> collected = CollectSourceFiles(p);
    files.insert(files.end(), collected.begin(), collected.end());
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::string corpus = corpus_path.empty() ? LocateFuzzCorpus(paths) : corpus_path;
  std::string corpus_content;
  bool have_corpus = false;
  if (!corpus.empty()) {
    std::ifstream in(corpus, std::ios::binary);
    if (in) {
      std::stringstream buf;
      buf << in.rdbuf();
      corpus_content = buf.str();
      have_corpus = true;
    }
  }

  std::vector<FileFacts> facts;
  facts.reserve(files.size());
  for (const std::string& f : files) {
    facts.push_back(ExtractFactsFromDisk(f));
  }
  return AssembleSummary(std::move(facts), have_corpus ? &corpus_content : nullptr);
}

}  // namespace lint
}  // namespace nt



