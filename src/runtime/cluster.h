// Cluster assembly: builds a full in-process deployment of one of the four
// evaluated systems (paper §6-7) on the simulated WAN — validators with
// primaries, workers, consensus nodes, payload providers, key material,
// topology, fault controller, and metrics — from a single config struct.
#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/bullshark/bullshark.h"
#include "src/crypto/coin.h"
#include "src/hotstuff/hotstuff.h"
#include "src/narwhal/mempool.h"
#include "src/narwhal/primary.h"
#include "src/narwhal/worker.h"
#include "src/net/network.h"
#include "src/runtime/metrics.h"
#include "src/shard/sharded_executor.h"
#include "src/tusk/dag_rider.h"
#include "src/tusk/tusk.h"

namespace nt {

// Which of the evaluated systems to deploy.
enum class SystemKind {
  kBaselineHs,  // HotStuff with a gossiped transaction mempool.
  kBatchedHs,   // HotStuff over best-effort batches (Prism-style).
  kNarwhalHs,   // HotStuff over the Narwhal mempool.
  kTusk,        // Narwhal + Tusk asynchronous consensus.
  kDagRider,    // Narwhal + DAG-Rider committer (ablation).
  kBullshark,   // Narwhal + Bullshark partially-synchronous 2-round rule.
};

const char* SystemName(SystemKind kind);

struct ClusterConfig {
  SystemKind system = SystemKind::kTusk;
  uint32_t num_validators = 4;
  uint32_t workers_per_validator = 1;
  // Workers share the primary's machine (true = paper's "collocate").
  bool collocate = true;
  uint64_t seed = 1;
  SignerKind signer_kind = SignerKind::kFast;
  // Propagation model: WAN region matrix (default), uniform 25-75ms random
  // delays (the paper's Lemma 5 network), or an exact constant (for
  // round-trip-denominated measurements like Table 1).
  enum class LatencyKind { kWan, kUniform, kFixed };
  LatencyKind latency_kind = LatencyKind::kWan;
  TimeDelta fixed_latency = Millis(50);
  // Bounds for kUniform. Wide bounds (e.g. 1s..90s) emulate an asynchronous
  // network: quorum steps advance at the speed of the fastest 2f+1 messages
  // while leader-driven chains lose every race against view timers.
  TimeDelta uniform_lo = Millis(25);
  TimeDelta uniform_hi = Millis(75);

  NarwhalConfig narwhal;
  HotStuffConfig hotstuff;
  BullsharkConfig bullshark;
  NetworkConfig net;

  // When non-empty, each worker persists batches to a WAL at
  // <persist_dir>/worker_<validator>_<worker>.wal (the role RocksDB plays in
  // the paper's artifact, §6). Empty = in-memory stores.
  std::string persist_dir;

  // Sharded execution lanes per validator (§8.4): when > 0, every validator
  // of a Narwhal-based system gets a ShardedExecutor with this many
  // KvStateMachine lanes, fed by its local commit stream. 0 = execution off
  // (the mempool/consensus measurements don't pay for it). Ignored for the
  // HotStuff-mempool baselines, whose payloads are synthetic bytes.
  uint32_t exec_lanes = 0;

  // Lifecycle tracing (src/common/trace.h): when set, the cluster owns a
  // Tracer, wires emit points through every node, and samples per-node
  // gauges every trace_gauge_interval once StartGaugeSampling is called.
  bool trace = false;
  TimeDelta trace_gauge_interval = Millis(100);

  // Baseline/batched parameters. Baseline proposals carry raw transactions
  // up to 500KB. Batched proposals follow the paper's 1KB consensus block:
  // ~32 batch digests per proposal — the bound that throttles Batched-HS
  // catch-up after stalls, while a single Narwhal certificate commits its
  // entire causal history (§7.3).
  uint64_t max_block_bytes = 500 * 1000;
  TimeDelta gossip_interval = Millis(50);
  TimeDelta gossip_delay = Millis(200);
  uint64_t max_digests_per_block = 128;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Starts all nodes (schedules genesis proposals etc. at the current time).
  void Start();

  // Submits one client transaction to validator `v` (worker `w` for Narwhal
  // systems; providers for HotStuff mempool modes).
  void SubmitTx(ValidatorId v, WorkerId w, uint64_t size_bytes, std::optional<TxSample> sample);

  // Submits an explicit transaction payload (an encoded ExecTx) to validator
  // `v`'s worker `w`. Narwhal-based systems only — the baselines carry
  // synthetic bytes and have no executable payload path.
  void SubmitTxPayload(ValidatorId v, WorkerId w, Bytes payload, std::optional<TxSample> sample);

  // Crashes every machine of validator `v` at `when`.
  void CrashValidator(ValidatorId v, TimePoint when);
  // Isolates every node of validator `v` during [start, end).
  void IsolateValidator(ValidatorId v, TimePoint start, TimePoint end);

  // Crash–restart: takes validator `v` down during [crash_at, recover_at),
  // then tears down its Primary/Worker/consensus objects and reconstructs
  // them from the validator's durable stores (which the cluster owns and
  // keeps alive across the rebuild — they are the simulated disk). The
  // recovered validator pulls the DAG suffix it missed through the existing
  // header synchronizer. Only supported for SupportsRestart() systems;
  // otherwise logs an error and degrades to a permanent crash.
  void RestartValidator(ValidatorId v, TimePoint crash_at, TimePoint recover_at);
  bool SupportsRestart() const {
    return config_.system == SystemKind::kTusk || config_.system == SystemKind::kNarwhalHs ||
           config_.system == SystemKind::kBullshark;
  }

  // Fired after a validator's objects were rebuilt and recovered but before
  // their OnStart runs — the window where observers (DST checker, tests)
  // re-register per-node hooks that died with the old objects.
  void set_on_validator_rebuilt(std::function<void(ValidatorId)> hook) {
    on_validator_rebuilt_ = std::move(hook);
  }

  // One entry per completed rebuild, in recovery order (EXPERIMENTS.md's
  // recovery-metrics table reads these).
  struct RecoveryStats {
    ValidatorId validator = 0;
    TimePoint recovered_at = 0;
    uint64_t records_replayed = 0;  // Store records read back by Recover().
    Round resume_round = 0;         // DAG round re-derived from the store.
  };
  const std::vector<RecoveryStats>& recovery_stats() const { return recovery_stats_; }

  const ClusterConfig& config() const { return config_; }
  Scheduler& scheduler() { return scheduler_; }
  Network& network() { return *network_; }
  FaultController& faults() { return faults_; }
  Metrics& metrics() { return metrics_; }
  const Committee& committee() const { return committee_; }
  BatchDirectory& directory() { return directory_; }

  // The cluster's tracer; nullptr when config.trace is false.
  Tracer* tracer() { return tracer_.get(); }
  // Next client transaction id, unique across all of this cluster's load
  // generators. Deliberately per-cluster, not a process-wide static: a
  // second experiment in the same process must replay identically from id 0
  // (tx ids feed payload bytes and trace labels, so a leaking counter shows
  // up as run-to-run divergence in the determinism audit).
  uint64_t NextTxId() { return next_tx_id_++; }
  // True if validator `v` is currently crashed (any of its nodes; a crash
  // takes the validator's machines down together).
  bool IsValidatorCrashed(ValidatorId v) const;
  // Samples registered gauges every config.trace_gauge_interval until
  // `until` (exclusive). No-op without a tracer. Bounded so RunUntilIdle
  // style tests terminate.
  void StartGaugeSampling(TimePoint until);

  // Periodically retries executors whose committed headers still wait for
  // batch payloads (worker synchronization in flight at commit time), every
  // 500ms until `until` (exclusive). No-op without execution lanes. Bounded
  // like StartGaugeSampling so runs terminate.
  void StartExecutorPump(TimePoint until);

  Primary* primary(ValidatorId v) { return primaries_.empty() ? nullptr : primaries_[v].get(); }
  Worker* worker(ValidatorId v, WorkerId w) {
    return workers_.empty() ? nullptr : workers_[v][w].get();
  }
  Tusk* tusk(ValidatorId v) { return tusks_.empty() ? nullptr : tusks_[v].get(); }
  Bullshark* bullshark(ValidatorId v) {
    return bullsharks_.empty() ? nullptr : bullsharks_[v].get();
  }
  DagRider* dag_rider(ValidatorId v) { return riders_.empty() ? nullptr : riders_[v].get(); }
  HotStuff* hotstuff(ValidatorId v) { return hs_nodes_.empty() ? nullptr : hs_nodes_[v].get(); }
  PayloadProvider* provider(ValidatorId v) {
    return providers_.empty() ? nullptr : providers_[v].get();
  }
  // Validator `v`'s execution lanes; nullptr unless config.exec_lanes > 0 on
  // a Narwhal-based system. The executor object survives RestartValidator
  // rebuilds (commits are not re-delivered across a recovery, so its state
  // stays consistent); only the commit hook is re-registered.
  ShardedExecutor* sharded_executor(ValidatorId v) {
    return executors_.empty() ? nullptr : executors_[v].get();
  }
  Mempool MempoolOf(ValidatorId v) { return Mempool(primary(v), worker(v, 0)); }

  const Topology& topology() const { return topology_; }

  // The durable stores backing validator `v` (cluster-owned; never null for
  // Narwhal-based systems). Tests inspect them to assert persistence.
  Store* primary_store(ValidatorId v) {
    return primary_stores_.empty() ? nullptr : primary_stores_[v].get();
  }
  Store* consensus_store(ValidatorId v) {
    return consensus_stores_.empty() ? nullptr : consensus_stores_[v].get();
  }
  Store* worker_store(ValidatorId v, WorkerId w) {
    return worker_stores_.empty() ? nullptr : worker_stores_[v][w].get();
  }

 private:
  void BuildNarwhal();
  void BuildHotStuff();
  void WireTuskMetrics();
  void WireTuskMetricsFor(ValidatorId v);
  // Creates validator `v`'s ShardedExecutor on first call and (re-)registers
  // its commit-stream hook on the current consensus object — called at build
  // and again from RebuildValidator, where the old hook died with the old
  // consensus node.
  void WireExecutorFor(ValidatorId v);
  void WireHotStuffValidator(ValidatorId v);
  void AttachTracer();
  void RegisterTraceGauges();
  // Opens the durable store `name` under config.persist_dir (failing loudly
  // on a corrupt/unopenable WAL), or an in-memory store when persist_dir is
  // empty — either way the cluster owns it for the lifetime of the run, so
  // it survives validator rebuilds.
  std::unique_ptr<Store> MakeStore(const std::string& name);
  // Tears down and reconstructs validator `v` from its stores (the recovery
  // half of RestartValidator; runs at the scheduled recovery time).
  void RebuildValidator(ValidatorId v);

  ClusterConfig config_;
  Scheduler scheduler_;
  std::unique_ptr<LatencyModel> latency_;
  FaultController faults_;
  std::unique_ptr<Network> network_;
  // Declared before metrics_ and the node containers: they hold raw Tracer
  // pointers, so the tracer must be destroyed last.
  std::unique_ptr<Tracer> tracer_;
  Metrics metrics_;
  Committee committee_;
  BatchDirectory directory_;
  Topology topology_;
  CommonCoin coin_;
  uint64_t next_tx_id_ = 0;

  std::vector<std::unique_ptr<Signer>> signers_;
  // Durable stores, declared before the node containers: nodes hold raw
  // Store pointers, so the stores must be destroyed after them. They also
  // outlive individual node objects across RestartValidator rebuilds.
  std::vector<std::unique_ptr<Store>> primary_stores_;
  std::vector<std::vector<std::unique_ptr<Store>>> worker_stores_;
  std::vector<std::unique_ptr<Store>> consensus_stores_;
  std::vector<std::unique_ptr<Primary>> primaries_;
  std::vector<std::vector<std::unique_ptr<Worker>>> workers_;
  std::vector<std::unique_ptr<Tusk>> tusks_;
  std::vector<std::unique_ptr<Bullshark>> bullsharks_;
  std::vector<std::unique_ptr<DagRider>> riders_;
  std::vector<std::unique_ptr<PayloadProvider>> providers_;
  std::vector<std::unique_ptr<HotStuff>> hs_nodes_;
  // Execution lanes (empty unless config.exec_lanes > 0 on a Narwhal-based
  // system). Kept below the worker containers so batch fetches resolve
  // through live workers during destruction order, and kept alive across
  // validator rebuilds — the executor is the validator's application state.
  std::vector<std::unique_ptr<ShardedExecutor>> executors_;
  std::unique_ptr<SharedTxPool> shared_pool_;
  std::vector<uint32_t> consensus_net_ids_;

  std::function<void(ValidatorId)> on_validator_rebuilt_;
  std::vector<RecoveryStats> recovery_stats_;
};

}  // namespace nt

#endif  // SRC_RUNTIME_CLUSTER_H_
