// One-shot experiment runner: deploys a cluster, drives load, injects
// faults, and reports the paper's metrics (throughput in tx/s, end-to-end
// latency statistics). The benchmark binaries for every table and figure are
// thin sweeps over RunExperiment.
#ifndef SRC_RUNTIME_EXPERIMENT_H_
#define SRC_RUNTIME_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {

struct ExperimentParams {
  SystemKind system = SystemKind::kTusk;
  uint32_t nodes = 4;
  uint32_t workers = 1;
  bool collocate = true;
  double rate_tps = 10000;  // Aggregate input rate across all clients.
  uint64_t tx_size = 512;
  uint32_t faults = 0;            // Crash this many validators at t=0.
  TimeDelta duration = Seconds(20);
  TimeDelta warmup = Seconds(5);
  uint64_t seed = 1;

  // Optional asynchrony window (latency multiplied by `async_factor`).
  TimePoint async_start = kNever;
  TimePoint async_end = kNever;
  double async_factor = 20.0;

  // Additional asynchrony windows (for alternating unstable-network
  // schedules); applied on top of the single window above.
  struct AsyncWindow {
    TimePoint start;
    TimePoint end;
    double factor;
  };
  std::vector<AsyncWindow> async_windows;

  // Client re-submission (0 = disabled; see LoadGenerator::Options).
  TimeDelta resubmit_timeout = 0;
  uint32_t max_resubmits = 8;

  // Sharded execution lanes (§8.4): shards > 0 deploys a ShardedExecutor
  // with that many lanes per validator, switches every client to the
  // accounts/transfer workload (cluster.exec_lanes is overwritten), and
  // reports applied/rejected/cross-shard execution counters. Narwhal-based
  // systems only. The remaining knobs shape the workload (see
  // TransferWorkloadConfig).
  uint32_t shards = 0;
  double cross_ratio = 0.0;
  double zipf_theta = 0.0;
  double hot_ratio = 0.0;

  // Lifecycle tracing: `trace` enables the Tracer (per-stage latency
  // breakdown in the result); a non-empty `trace_path` additionally writes
  // a Chrome trace-event JSON (chrome://tracing / Perfetto) and implies
  // `trace`.
  bool trace = false;
  std::string trace_path;

  // Forwarded knobs.
  ClusterConfig cluster;  // system/nodes/workers/seed fields are overwritten.
};

struct ExperimentResult {
  std::string system;
  uint32_t nodes = 0;
  uint32_t workers = 0;
  uint32_t faults = 0;
  double input_tps = 0;
  double tps = 0;
  double avg_latency_s = 0;
  double latency_stddev_s = 0;
  double p50_latency_s = 0;
  double p99_latency_s = 0;
  uint64_t committed_txs = 0;
  uint64_t sampled_txs = 0;

  // Verified-certificate cache activity during the run, aggregated over
  // every node's per-validator cache (see Metrics::cert_cache_hits).
  uint64_t cert_cache_hits = 0;
  uint64_t cert_cache_misses = 0;

  // Client-side resubmission accounting (satellite of Fig. 8 loss runs).
  uint64_t resubmitted_txs = 0;
  uint64_t abandoned_txs = 0;

  // Execution counters at the observer validator (params.shards > 0 only):
  // transactions applied vs rejected by the state machine, and how many of
  // the applied were cross-shard transfers.
  uint64_t exec_applied = 0;
  uint64_t exec_rejected = 0;
  uint64_t exec_cross = 0;

  // Per-stage latency breakdown; populated only when params.trace was set.
  bool traced = false;
  LatencyBreakdown breakdown;
  // True if params.trace_path was written successfully.
  bool trace_written = false;
};

ExperimentResult RunExperiment(const ExperimentParams& params);

// Prints a fixed-width results-table row (header printed with `header`).
void PrintResultHeader();
void PrintResultRow(const ExperimentResult& result);

// Prints the per-stage latency breakdown table (no-op unless result.traced).
void PrintLatencyBreakdown(const ExperimentResult& result);

}  // namespace nt

#endif  // SRC_RUNTIME_EXPERIMENT_H_
