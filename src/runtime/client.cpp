#include "src/runtime/client.h"

namespace nt {

LoadGenerator::LoadGenerator(Cluster* cluster, ValidatorId validator, WorkerId worker,
                             Options options)
    : cluster_(cluster),
      validator_(validator),
      worker_(worker),
      options_(options),
      rng_(Rng::Derive(cluster->config().seed,
                       "loadgen-" + std::to_string(validator) + "-" + std::to_string(worker))) {}

void LoadGenerator::Start() {
  cluster_->scheduler().ScheduleAfter(options_.tick, [this] { Tick(); });
}

void LoadGenerator::Tick() {
  TimePoint now = cluster_->scheduler().now();
  if (now >= options_.stop_at) {
    return;
  }
  carry_ += options_.rate_tps * ToSeconds(options_.tick);
  uint64_t count = static_cast<uint64_t>(carry_);
  carry_ -= static_cast<double>(count);

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = cluster_->NextTxId();
    Bytes payload;
    if (options_.transfer != nullptr) {
      // The cluster-unique tx id doubles as the transfer nonce, so two
      // clients drawing the same (from, to, amount) still submit distinct
      // wire payloads (the worker dedup window must not merge them).
      payload = options_.transfer->NextTransfer(rng_, id);
    }
    std::optional<TxSample> sample;
    if (until_sample_ == 0) {
      sample = TxSample{id, now};
      until_sample_ = options_.sample_rate;
      if (options_.resubmit_timeout > 0) {
        pending_.push_back(PendingTx{id, now, now, 1, validator_, payload});
      }
      NT_TRACE(cluster_->tracer(), OnTxSubmit(id, validator_, now));
    }
    --until_sample_;
    if (options_.transfer != nullptr) {
      cluster_->SubmitTxPayload(validator_, worker_, std::move(payload), sample);
    } else {
      cluster_->SubmitTx(validator_, worker_, options_.tx_size, sample);
    }
    ++submitted_;
  }
  if (options_.resubmit_timeout > 0) {
    CheckResubmits(now);
  }
  cluster_->scheduler().ScheduleAfter(options_.tick, [this] { Tick(); });
}

void LoadGenerator::CheckResubmits(TimePoint now) {
  const Metrics& metrics = cluster_->metrics();
  const uint32_t num_validators = cluster_->config().num_validators;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (metrics.IsSampleCommitted(it->tx_id)) {
      it = pending_.erase(it);
      continue;
    }
    if (it->attempts > options_.max_resubmits) {
      // The client gives up on this transaction. It was counted as submitted
      // but will never commit; report it so loss accounting (Fig. 8) sees it
      // instead of it silently vanishing.
      ++abandoned_;
      cluster_->metrics().AddAbandonedTxs(1);
      NT_TRACE(cluster_->tracer(), OnTxAbandoned(it->tx_id, now));
      it = pending_.erase(it);
      continue;
    }
    if (now - it->last_attempt >= options_.resubmit_timeout) {
      if (options_.failover) {
        // Rotate to the next validator the network still reports alive —
        // failing over onto a crashed entry point would burn a whole
        // resubmit_timeout for nothing. If every other validator is down,
        // stay where we are.
        ValidatorId next = it->target;
        for (uint32_t step = 1; step <= num_validators; ++step) {
          ValidatorId candidate = (it->target + step) % num_validators;
          if (!cluster_->IsValidatorCrashed(candidate)) {
            next = candidate;
            break;
          }
        }
        it->target = next;
      }
      // Keep the original submit time: latency is measured from the client's
      // first attempt, as the paper's clients would experience it.
      if (options_.transfer != nullptr) {
        cluster_->SubmitTxPayload(it->target, worker_, it->payload,
                                  TxSample{it->tx_id, it->submit_time});
      } else {
        cluster_->SubmitTx(it->target, worker_, options_.tx_size,
                           TxSample{it->tx_id, it->submit_time});
      }
      it->last_attempt = now;
      ++it->attempts;
      ++resubmitted_;
      NT_TRACE(cluster_->tracer(), OnTxResubmit(it->tx_id, it->target, it->attempts, now));
    }
    ++it;
  }
}

}  // namespace nt
