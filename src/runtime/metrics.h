// Commit-side measurement, mirroring the paper's methodology (§7):
// throughput is committed transactions per second observed at one correct
// validator; latency is measured on sampled transactions from client
// submission until the validator the client submitted to commits them.
#ifndef SRC_RUNTIME_METRICS_H_
#define SRC_RUNTIME_METRICS_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/common/trace.h"
#include "src/sim/scheduler.h"
#include "src/types/cert_cache.h"
#include "src/types/types.h"

namespace nt {

class Metrics {
 public:
  explicit Metrics(Scheduler* scheduler)
      : scheduler_(scheduler), cert_cache_baseline_(VerifiedCertCache::Combined()) {}

  // Throughput counts commits observed at this validator only (each block is
  // committed by every honest validator; count it once).
  void set_observer(ValidatorId v) { observer_ = v; }

  // Attaches the cluster's tracer: per-transaction commit stamps are emitted
  // here (at the latency-owner validator, exactly where latency_ samples
  // come from) so the traced breakdown sums to the measured e2e latency.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Measurement window [start, end): commits outside it are ignored
  // (warm-up / cool-down).
  void SetWindow(TimePoint start, TimePoint end) {
    window_start_ = start;
    window_end_ = end;
  }

  // Called by every validator's commit sink.
  //   at:            validator that just committed locally;
  //   latency_owner: validator whose local commit defines the samples'
  //                  latency (where the client submitted).
  void OnCommit(ValidatorId at, ValidatorId latency_owner, uint64_t num_txs,
                uint64_t payload_bytes, const std::vector<TxSample>& samples);

  uint64_t committed_txs() const { return committed_txs_; }
  uint64_t committed_bytes() const { return committed_bytes_; }
  const SampleStats& latency_seconds() const { return latency_; }

  // Execution-side counters (sharded execution lanes, §8.4). The executor
  // reports its cumulative totals after every executed header; only the
  // observer validator's stream is recorded (every honest validator executes
  // the same transactions — count them once, like commits). Applied and
  // rejected are split so benchmark output can distinguish throughput from
  // churn (insufficient-funds / malformed payloads).
  void OnExecuted(ValidatorId at, uint64_t applied_total, uint64_t rejected_total,
                  uint64_t cross_total) {
    if (at != observer_) {
      return;
    }
    exec_applied_ = applied_total;
    exec_rejected_ = rejected_total;
    exec_cross_ = cross_total;
  }
  uint64_t exec_applied() const { return exec_applied_; }
  uint64_t exec_rejected() const { return exec_rejected_; }
  uint64_t exec_cross() const { return exec_cross_; }

  // Transactions whose clients gave up after max_resubmits (satellite of the
  // Fig. 8 loss accounting: submitted-but-never-committed must be visible).
  void AddAbandonedTxs(uint64_t n) { abandoned_txs_ += n; }
  uint64_t abandoned_txs() const { return abandoned_txs_; }

  // Commit feedback for clients (paper §8.4: "Narwhal relies on clients to
  // re-submit a transaction if it is not sequenced in time"): true once any
  // validator committed the sampled transaction.
  bool IsSampleCommitted(uint64_t tx_id) const { return committed_samples_.count(tx_id) != 0; }

  double ThroughputTps() const {
    double window = ToSeconds(window_end_ - window_start_);
    return window > 0 ? static_cast<double>(committed_txs_) / window : 0.0;
  }

  // Attributes a per-validator cache's activity to this run. Cluster calls
  // this for every node it builds; the cache's counters are snapshotted at
  // registration, so activity that predates the run is excluded. The pointer
  // must outlive this Metrics instance (Cluster declares metrics_ before the
  // node containers, so nodes are destroyed first).
  void RegisterCertCache(const VerifiedCertCache* cache);

  // Detaches a cache about to be destroyed (a validator being rebuilt after
  // a simulated restart): its activity so far is folded into a retired total
  // so the run's numbers stay monotone while the pointer goes away.
  void UnregisterCertCache(const VerifiedCertCache* cache);

  // Verified-certificate cache activity attributed to this run: the sum over
  // registered per-validator caches, plus the process-wide default caches'
  // movement since this Metrics instance was created (tools and tests that
  // verify through the defaults). Every delta clamps to zero when a cache's
  // counters moved backwards (Clear()/ResetStats() mid-run) instead of
  // wrapping around.
  uint64_t cert_cache_hits() const;
  uint64_t cert_cache_misses() const;
  double CertCacheHitRate() const {
    uint64_t total = cert_cache_hits() + cert_cache_misses();
    return total == 0 ? 0.0 : static_cast<double>(cert_cache_hits()) / static_cast<double>(total);
  }

 private:
  struct RegisteredCache {
    const VerifiedCertCache* cache;
    VerifiedCertCache::Stats baseline;
  };

  Scheduler* scheduler_;
  VerifiedCertCache::Stats cert_cache_baseline_;
  std::vector<RegisteredCache> cert_caches_;
  // Activity of caches unregistered mid-run (validators rebuilt on restart).
  uint64_t retired_cache_hits_ = 0;
  uint64_t retired_cache_misses_ = 0;
  ValidatorId observer_ = 0;
  TimePoint window_start_ = 0;
  TimePoint window_end_ = kNever;

  uint64_t committed_txs_ = 0;
  uint64_t committed_bytes_ = 0;
  uint64_t abandoned_txs_ = 0;
  uint64_t exec_applied_ = 0;
  uint64_t exec_rejected_ = 0;
  uint64_t exec_cross_ = 0;
  SampleStats latency_;
  std::set<uint64_t> committed_samples_;
  Tracer* tracer_ = nullptr;
};

}  // namespace nt

#endif  // SRC_RUNTIME_METRICS_H_
