#include "src/runtime/experiment.h"

#include <cstdio>
#include <memory>

#include "src/shard/workload.h"

namespace nt {

ExperimentResult RunExperiment(const ExperimentParams& params) {
  ClusterConfig config = params.cluster;
  config.system = params.system;
  config.num_validators = params.nodes;
  config.workers_per_validator = params.workers;
  config.collocate = params.collocate;
  config.seed = params.seed;
  config.exec_lanes = params.shards;
  const bool trace = params.trace || !params.trace_path.empty();
  config.trace = config.trace || trace;

  // The accounts/transfer workload behind every client in sharded-execution
  // mode; must outlive the generators.
  std::unique_ptr<TransferWorkload> workload;
  if (params.shards > 0) {
    TransferWorkloadConfig wl;
    wl.num_shards = params.shards;
    wl.cross_ratio = params.cross_ratio;
    wl.zipf_theta = params.zipf_theta;
    wl.hot_ratio = params.hot_ratio;
    workload = std::make_unique<TransferWorkload>(wl);
  }

  Cluster cluster(config);

  // Crash the highest-numbered validators (validator 0 stays alive as the
  // metrics observer, matching the paper's measurement at a correct node).
  for (uint32_t i = 0; i < params.faults && i + 1 < params.nodes; ++i) {
    cluster.CrashValidator(params.nodes - 1 - i, 0);
  }
  if (params.async_start != kNever) {
    cluster.faults().AddAsynchronyWindow(params.async_start, params.async_end,
                                         params.async_factor);
  }
  for (const ExperimentParams::AsyncWindow& w : params.async_windows) {
    cluster.faults().AddAsynchronyWindow(w.start, w.end, w.factor);
  }

  cluster.metrics().set_observer(0);
  cluster.metrics().SetWindow(params.warmup, params.duration);

  // One client per (validator, worker), splitting the aggregate rate.
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  double per_client = params.rate_tps / (params.nodes * params.workers);
  for (uint32_t v = 0; v < params.nodes; ++v) {
    for (uint32_t w = 0; w < params.workers; ++w) {
      LoadGenerator::Options options;
      options.rate_tps = per_client;
      options.tx_size = params.tx_size;
      options.sample_rate = config.narwhal.tx_sample_rate;
      options.stop_at = params.duration;
      options.resubmit_timeout = params.resubmit_timeout;
      options.max_resubmits = params.max_resubmits;
      options.transfer = workload.get();
      clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, w, options));
    }
  }

  if (workload != nullptr) {
    // Fund the account population before the transfer stream ramps up: one
    // sealed block of mints through the observer's worker right after start
    // (transfers that race ahead of the mint commit are counted as rejected,
    // and the warm-up window absorbs them).
    std::vector<Bytes> mints = workload->InitialMints();
    Cluster* c = &cluster;
    cluster.scheduler().ScheduleAt(Millis(1), [c, mints] { c->worker(0, 0)->SubmitBlock(mints); });
  }

  cluster.Start();
  for (auto& client : clients) {
    client->Start();
  }
  cluster.StartGaugeSampling(params.duration);
  cluster.StartExecutorPump(params.duration);
  cluster.scheduler().RunUntil(params.duration);

  ExperimentResult result;
  result.system = SystemName(params.system);
  result.nodes = params.nodes;
  result.workers = params.workers;
  result.faults = params.faults;
  result.input_tps = params.rate_tps;
  result.tps = cluster.metrics().ThroughputTps();
  const SampleStats& lat = cluster.metrics().latency_seconds();
  result.avg_latency_s = lat.Mean();
  result.latency_stddev_s = lat.StdDev();
  result.p50_latency_s = lat.Percentile(50);
  result.p99_latency_s = lat.Percentile(99);
  result.committed_txs = cluster.metrics().committed_txs();
  result.sampled_txs = lat.count();
  result.cert_cache_hits = cluster.metrics().cert_cache_hits();
  result.cert_cache_misses = cluster.metrics().cert_cache_misses();
  result.abandoned_txs = cluster.metrics().abandoned_txs();
  result.exec_applied = cluster.metrics().exec_applied();
  result.exec_rejected = cluster.metrics().exec_rejected();
  result.exec_cross = cluster.metrics().exec_cross();
  for (const auto& client : clients) {
    result.resubmitted_txs += client->resubmitted_txs();
  }
  if (Tracer* tracer = cluster.tracer()) {
    result.traced = true;
    result.breakdown = tracer->ComputeBreakdown(params.warmup, params.duration);
    if (!params.trace_path.empty()) {
      result.trace_written = tracer->WriteChromeTrace(params.trace_path);
    }
  }
  return result;
}

void PrintResultHeader() {
  std::printf("%-12s %6s %7s %7s %10s %10s %9s %9s %9s %11s %10s %10s %11s %9s %10s\n", "system",
              "nodes", "workers", "faults", "input_tps", "tps", "avg_lat_s", "p50_lat_s",
              "p99_lat_s", "committed", "cert_hits", "cert_miss", "exec_appl", "exec_rej",
              "exec_cross");
}

void PrintResultRow(const ExperimentResult& r) {
  std::printf(
      "%-12s %6u %7u %7u %10.0f %10.0f %9.2f %9.2f %9.2f %11llu %10llu %10llu %11llu %9llu "
      "%10llu\n",
      r.system.c_str(), r.nodes, r.workers, r.faults, r.input_tps, r.tps, r.avg_latency_s,
      r.p50_latency_s, r.p99_latency_s, static_cast<unsigned long long>(r.committed_txs),
      static_cast<unsigned long long>(r.cert_cache_hits),
      static_cast<unsigned long long>(r.cert_cache_misses),
      static_cast<unsigned long long>(r.exec_applied),
      static_cast<unsigned long long>(r.exec_rejected),
      static_cast<unsigned long long>(r.exec_cross));
  std::fflush(stdout);
}

void PrintLatencyBreakdown(const ExperimentResult& r) {
  if (!r.traced) {
    return;
  }
  std::printf("latency breakdown (%llu txs, %llu incomplete):\n",
              static_cast<unsigned long long>(r.breakdown.completed_txs),
              static_cast<unsigned long long>(r.breakdown.incomplete_txs));
  std::printf("  %-8s %9s %9s %9s\n", "stage", "mean_s", "p50_s", "p99_s");
  auto row = [](const char* name, const SampleStats& s) {
    std::printf("  %-8s %9.3f %9.3f %9.3f\n", name, s.Mean(), s.Percentile(50), s.Percentile(99));
  };
  row("batch", r.breakdown.batch_s);
  row("cert", r.breakdown.cert_s);
  row("commit", r.breakdown.commit_s);
  row("exec", r.breakdown.exec_s);
  row("e2e", r.breakdown.e2e_s);
  std::fflush(stdout);
}

}  // namespace nt
