#include "src/runtime/cluster.h"

#include <stdexcept>

#include "src/common/logging.h"

namespace nt {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kBaselineHs:
      return "baseline-HS";
    case SystemKind::kBatchedHs:
      return "batched-HS";
    case SystemKind::kNarwhalHs:
      return "Narwhal-HS";
    case SystemKind::kTusk:
      return "Tusk";
    case SystemKind::kDagRider:
      return "DAG-Rider";
    case SystemKind::kBullshark:
      return "Bullshark";
  }
  return "?";
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), metrics_(&scheduler_), coin_(config.seed) {
  switch (config_.latency_kind) {
    case ClusterConfig::LatencyKind::kWan:
      latency_ = std::make_unique<WanLatencyModel>();
      break;
    case ClusterConfig::LatencyKind::kUniform:
      latency_ = std::make_unique<UniformLatencyModel>(config_.uniform_lo, config_.uniform_hi);
      break;
    case ClusterConfig::LatencyKind::kFixed:
      latency_ = std::make_unique<FixedLatencyModel>(config_.fixed_latency);
      break;
  }
  network_ = std::make_unique<Network>(&scheduler_, latency_.get(), &faults_, config_.net,
                                       config_.seed);

  // Key material and committee (validators spread over the 5 WAN regions).
  std::vector<ValidatorInfo> infos;
  for (uint32_t v = 0; v < config_.num_validators; ++v) {
    signers_.push_back(MakeSigner(config_.signer_kind, DeriveSeed(config_.seed, v)));
    ValidatorInfo info;
    info.key = signers_.back()->public_key();
    info.region = v % kWanRegionCount;
    infos.push_back(info);
  }
  committee_ = Committee(std::move(infos));

  const bool narwhal_based = config_.system == SystemKind::kNarwhalHs ||
                             config_.system == SystemKind::kTusk ||
                             config_.system == SystemKind::kDagRider ||
                             config_.system == SystemKind::kBullshark;
  if (narwhal_based) {
    BuildNarwhal();
  }
  switch (config_.system) {
    case SystemKind::kTusk:
      consensus_stores_.resize(config_.num_validators);
      for (uint32_t v = 0; v < config_.num_validators; ++v) {
        consensus_stores_[v] = MakeStore("consensus_" + std::to_string(v) + ".wal");
        tusks_.push_back(std::make_unique<Tusk>(primaries_[v].get(), committee_, &coin_,
                                                config_.narwhal.gc_depth));
        tusks_.back()->set_store(consensus_stores_[v].get());
      }
      WireTuskMetrics();
      break;
    case SystemKind::kBullshark:
      consensus_stores_.resize(config_.num_validators);
      for (uint32_t v = 0; v < config_.num_validators; ++v) {
        consensus_stores_[v] = MakeStore("consensus_" + std::to_string(v) + ".wal");
        bullsharks_.push_back(std::make_unique<Bullshark>(
            primaries_[v].get(), committee_, config_.narwhal.gc_depth, config_.bullshark));
        bullsharks_.back()->set_store(consensus_stores_[v].get());
      }
      WireTuskMetrics();
      break;
    case SystemKind::kDagRider:
      for (uint32_t v = 0; v < config_.num_validators; ++v) {
        riders_.push_back(std::make_unique<DagRider>(primaries_[v].get(), committee_, &coin_));
      }
      WireTuskMetrics();
      break;
    case SystemKind::kBaselineHs:
    case SystemKind::kBatchedHs:
    case SystemKind::kNarwhalHs:
      BuildHotStuff();
      break;
  }
  if (config_.exec_lanes > 0 && narwhal_based) {
    executors_.resize(config_.num_validators);
    for (ValidatorId v = 0; v < config_.num_validators; ++v) {
      WireExecutorFor(v);
    }
  } else if (config_.exec_lanes > 0) {
    LOG_ERROR() << "exec_lanes ignored for " << SystemName(config_.system)
                << " (no executable payload path)";
  }
  if (config_.trace) {
    AttachTracer();
  }
}

void Cluster::WireExecutorFor(ValidatorId v) {
  if (executors_[v] == nullptr) {
    // Resolve the worker at fetch time: a restarted validator's Worker is a
    // new object, and a raw pointer captured here would dangle.
    executors_[v] = std::make_unique<ShardedExecutor>(
        config_.exec_lanes,
        [this, v](const BatchRef& ref) { return workers_[v][0]->GetBatch(ref.digest); });
    ShardedExecutor* executor = executors_[v].get();
    executor->set_on_executed([this, v, executor](const Digest&, const std::vector<Digest>&) {
      metrics_.OnExecuted(v, executor->applied_txs(), executor->rejected_txs(),
                          executor->cross_shard_txs());
    });
  }
  auto on_committed = [this, v](const std::shared_ptr<const BlockHeader>& header) {
    executors_[v]->OnCommittedHeader(header);
    executors_[v]->RetryPending();
  };
  switch (config_.system) {
    case SystemKind::kTusk:
      tusks_[v]->add_on_commit(
          [on_committed](const Tusk::Committed& c) { on_committed(c.header); });
      break;
    case SystemKind::kBullshark:
      bullsharks_[v]->add_on_commit(
          [on_committed](const Bullshark::Committed& c) { on_committed(c.header); });
      break;
    case SystemKind::kDagRider:
      riders_[v]->add_on_commit(
          [on_committed](const DagRider::Committed& c) { on_committed(c.header); });
      break;
    case SystemKind::kNarwhalHs:
      static_cast<NarwhalProvider*>(providers_[v].get())
          ->add_on_header_commit(
              [on_committed](const Digest&, const std::shared_ptr<const BlockHeader>& header) {
                on_committed(header);
              });
      break;
    default:
      break;
  }
}

void Cluster::AttachTracer() {
  tracer_ = std::make_unique<Tracer>();
  metrics_.set_tracer(tracer_.get());
  for (auto& primary : primaries_) {
    primary->set_tracer(tracer_.get());
  }
  for (auto& validator_workers : workers_) {
    for (auto& worker : validator_workers) {
      worker->set_tracer(tracer_.get());
    }
  }
  for (auto& tusk : tusks_) {
    tusk->set_tracer(tracer_.get());
  }
  for (auto& bullshark : bullsharks_) {
    bullshark->set_tracer(tracer_.get());
  }
  for (auto& hs : hs_nodes_) {
    hs->set_tracer(tracer_.get());
  }
  for (ValidatorId v = 0; v < executors_.size(); ++v) {
    executors_[v]->set_tracer(tracer_.get(), v, &scheduler_);
  }
  RegisterTraceGauges();
}

void Cluster::RegisterTraceGauges() {
  Tracer* t = tracer_.get();
  t->RegisterGauge("scheduler/pending_events", 0, [this](TimePoint) {
    return static_cast<double>(scheduler_.pending_events());
  });
  t->RegisterGauge("cert_cache/hit_rate", 0,
                   [this](TimePoint) { return metrics_.CertCacheHitRate(); });
  for (ValidatorId v = 0; v < config_.num_validators; ++v) {
    uint32_t node_id;
    if (!topology_.primary_of.empty()) {
      node_id = topology_.primary_of[v];
    } else if (!consensus_net_ids_.empty()) {
      node_id = consensus_net_ids_[v];
    } else {
      continue;
    }
    const uint32_t machine = network_->machine_of(node_id);
    const std::string tag = "v" + std::to_string(v);
    t->RegisterGauge(tag + "/egress_backlog_us", v + 1, [this, machine](TimePoint now) {
      return static_cast<double>(network_->EgressBacklog(machine, now));
    });
    // NIC utilization over the sampling interval: fraction of wall time the
    // egress link spent transmitting since the previous sample.
    t->RegisterGauge(tag + "/egress_utilization", v + 1,
                     [this, machine, prev_busy = TimeDelta{0},
                      prev_at = TimePoint{0}](TimePoint now) mutable {
                       TimeDelta busy = network_->EgressBusyUs(machine);
                       double util = now > prev_at ? static_cast<double>(busy - prev_busy) /
                                                         static_cast<double>(now - prev_at)
                                                   : 0.0;
                       prev_busy = busy;
                       prev_at = now;
                       return util;
                     });
    if (!primaries_.empty()) {
      // Resolve the primary at sample time: a restart replaces the object.
      t->RegisterGauge(tag + "/dag_round", v + 1, [this, v](TimePoint) {
        return static_cast<double>(primaries_[v]->round());
      });
      t->RegisterGauge(tag + "/dag_certs", v + 1, [this, v](TimePoint) {
        return static_cast<double>(primaries_[v]->dag().TotalCertificates());
      });
    }
  }
}

void Cluster::StartGaugeSampling(TimePoint until) {
  if (tracer_ == nullptr || config_.trace_gauge_interval <= 0) {
    return;
  }
  scheduler_.ScheduleAfter(config_.trace_gauge_interval, [this, until] {
    TimePoint now = scheduler_.now();
    if (now >= until) {
      return;  // Bounded: no perpetual rescheduling past the horizon.
    }
    tracer_->SampleGauges(now);
    StartGaugeSampling(until);
  });
}

void Cluster::StartExecutorPump(TimePoint until) {
  if (executors_.empty()) {
    return;
  }
  scheduler_.ScheduleAfter(Millis(500), [this, until] {
    if (scheduler_.now() >= until) {
      return;  // Bounded: no perpetual rescheduling past the horizon.
    }
    for (auto& executor : executors_) {
      executor->RetryPending();
    }
    StartExecutorPump(until);
  });
}

bool Cluster::IsValidatorCrashed(ValidatorId v) const {
  if (!topology_.primary_of.empty()) {
    return network_->IsCrashed(topology_.primary_of[v]);
  }
  if (!consensus_net_ids_.empty()) {
    return network_->IsCrashed(consensus_net_ids_[v]);
  }
  return false;
}

Cluster::~Cluster() = default;

std::unique_ptr<Store> Cluster::MakeStore(const std::string& name) {
  if (config_.persist_dir.empty()) {
    // In-memory, but still cluster-owned and long-lived: for simulated
    // restarts the MemStore *is* the durable disk.
    return std::make_unique<MemStore>();
  }
  std::string path = config_.persist_dir + "/" + name;
  std::unique_ptr<Store> store = WalStore::Open(path);
  if (store == nullptr) {
    // Fail loudly. Silently substituting an in-memory store here would turn
    // "durable" into "ephemeral" behind the operator's back — a crash later
    // in the run would then lose state the configuration promised to keep.
    LOG_ERROR() << "cannot open WAL store at " << path;
    throw std::runtime_error("WalStore::Open failed: " + path);
  }
  return store;
}

void Cluster::BuildNarwhal() {
  const uint32_t n = config_.num_validators;
  const uint32_t w = config_.workers_per_validator;
  topology_.primary_of.resize(n);
  topology_.worker_of.assign(n, std::vector<uint32_t>(w));
  primaries_.resize(n);
  workers_.resize(n);
  primary_stores_.resize(n);
  worker_stores_.resize(n);

  for (ValidatorId v = 0; v < n; ++v) {
    uint32_t region = committee_.validator(v).region;
    uint32_t primary_machine = network_->NewMachine();

    primary_stores_[v] = MakeStore("primary_" + std::to_string(v) + ".wal");
    primaries_[v] = std::make_unique<Primary>(v, committee_, config_.narwhal, network_.get(),
                                              &topology_, signers_[v].get());
    primaries_[v]->set_store(primary_stores_[v].get());
    metrics_.RegisterCertCache(&primaries_[v]->cert_cache());
    uint32_t primary_id = network_->AddNode(primaries_[v].get(), region, primary_machine);
    primaries_[v]->set_net_id(primary_id);
    topology_.primary_of[v] = primary_id;
    topology_.role_of[primary_id] = {Topology::NodeRole::Kind::kPrimary, v, 0};

    workers_[v].resize(w);
    worker_stores_[v].resize(w);
    for (WorkerId wi = 0; wi < w; ++wi) {
      uint32_t machine = config_.collocate ? primary_machine : network_->NewMachine();
      worker_stores_[v][wi] =
          MakeStore("worker_" + std::to_string(v) + "_" + std::to_string(wi) + ".wal");
      workers_[v][wi] =
          std::make_unique<Worker>(v, wi, committee_, config_.narwhal, network_.get(), &topology_,
                                   worker_stores_[v][wi].get(), &directory_);
      uint32_t worker_id = network_->AddNode(workers_[v][wi].get(), region, machine);
      workers_[v][wi]->set_net_id(worker_id);
      topology_.worker_of[v][wi] = worker_id;
      topology_.role_of[worker_id] = {Topology::NodeRole::Kind::kWorker, v, wi};
    }
  }
}

void Cluster::BuildHotStuff() {
  const uint32_t n = config_.num_validators;
  if (config_.system == SystemKind::kBaselineHs) {
    shared_pool_ = std::make_unique<SharedTxPool>();
  }
  consensus_net_ids_.resize(n);
  providers_.resize(n);
  hs_nodes_.resize(n);
  if (config_.system == SystemKind::kNarwhalHs) {
    consensus_stores_.resize(n);
  }

  // First pass: create nodes and net ids (consensus node shares the
  // primary's machine for Narwhal-HS; otherwise it is the validator's only
  // machine).
  for (ValidatorId v = 0; v < n; ++v) {
    uint32_t region = committee_.validator(v).region;
    uint32_t machine;
    if (config_.system == SystemKind::kNarwhalHs) {
      machine = network_->machine_of(topology_.primary_of[v]);
    } else {
      machine = network_->NewMachine();
    }

    switch (config_.system) {
      case SystemKind::kBaselineHs:
        providers_[v] = std::make_unique<BaselineProvider>(
            v, shared_pool_.get(), config_.max_block_bytes, config_.gossip_interval,
            config_.gossip_delay);
        break;
      case SystemKind::kBatchedHs:
        providers_[v] = std::make_unique<BatchedProvider>(
            v, committee_, config_.narwhal.batch_size_bytes, config_.narwhal.max_batch_delay,
            config_.max_digests_per_block, &directory_);
        break;
      case SystemKind::kNarwhalHs: {
        consensus_stores_[v] = MakeStore("consensus_" + std::to_string(v) + ".wal");
        auto provider = std::make_unique<NarwhalProvider>(v, committee_, primaries_[v].get(),
                                                          &directory_, config_.narwhal.gc_depth);
        provider->set_store(consensus_stores_[v].get());
        providers_[v] = std::move(provider);
        break;
      }
      default:
        break;
    }

    hs_nodes_[v] = std::make_unique<HotStuff>(v, committee_, config_.hotstuff, network_.get(),
                                              signers_[v].get(), providers_[v].get());
    if (config_.system == SystemKind::kNarwhalHs) {
      hs_nodes_[v]->set_store(consensus_stores_[v].get());
    }
    metrics_.RegisterCertCache(&hs_nodes_[v]->cert_cache());
    uint32_t net_id = network_->AddNode(hs_nodes_[v].get(), region, machine);
    hs_nodes_[v]->set_net_id(net_id);
    consensus_net_ids_[v] = net_id;
    topology_.role_of[net_id] = {Topology::NodeRole::Kind::kConsensus, v, 0};
  }

  // Second pass: wire peers, providers, and metrics sinks.
  for (ValidatorId v = 0; v < n; ++v) {
    WireHotStuffValidator(v);
  }
}

void Cluster::WireHotStuffValidator(ValidatorId v) {
  hs_nodes_[v]->set_peers(consensus_net_ids_);
  std::vector<uint32_t> peer_ids;
  for (ValidatorId u = 0; u < config_.num_validators; ++u) {
    if (u != v) {
      peer_ids.push_back(consensus_net_ids_[u]);
    }
  }
  providers_[v]->BindNetwork(network_.get(), consensus_net_ids_[v], std::move(peer_ids));
  providers_[v]->set_commit_sink(
      [this, v](ValidatorId owner, uint64_t num, uint64_t bytes,
                const std::vector<TxSample>& samples) {
        metrics_.OnCommit(v, owner, num, bytes, samples);
      });
}

void Cluster::WireTuskMetrics() {
  for (ValidatorId v = 0; v < config_.num_validators; ++v) {
    WireTuskMetricsFor(v);
  }
}

void Cluster::WireTuskMetricsFor(ValidatorId v) {
  // Convert per-header commits into per-batch metrics via the directory.
  auto sink = [this, v](const std::shared_ptr<const BlockHeader>& header) {
    for (const BatchRef& ref : header->batches) {
      const BatchDirectory::Info* info = directory_.Find(ref.digest);
      ValidatorId owner = info != nullptr ? info->author : header->author;
      static const std::vector<TxSample> kNoSamples;
      metrics_.OnCommit(v, owner, ref.num_txs, ref.payload_bytes,
                        info != nullptr ? info->samples : kNoSamples);
    }
  };
  if (!tusks_.empty()) {
    tusks_[v]->add_on_commit(
        [sink](const Tusk::Committed& committed) { sink(committed.header); });
  } else if (!bullsharks_.empty()) {
    bullsharks_[v]->add_on_commit(
        [sink](const Bullshark::Committed& committed) { sink(committed.header); });
  } else {
    riders_[v]->add_on_commit(
        [sink](const DagRider::Committed& committed) { sink(committed.header); });
  }
}

void Cluster::Start() { network_->Start(); }

void Cluster::SubmitTx(ValidatorId v, WorkerId w, uint64_t size_bytes,
                       std::optional<TxSample> sample) {
  switch (config_.system) {
    case SystemKind::kTusk:
    case SystemKind::kDagRider:
    case SystemKind::kNarwhalHs:
    case SystemKind::kBullshark:
      workers_[v][w % config_.workers_per_validator]->SubmitTransaction(size_bytes, sample);
      break;
    case SystemKind::kBaselineHs: {
      auto* provider = static_cast<BaselineProvider*>(providers_[v].get());
      std::vector<TxSample> samples;
      if (sample.has_value()) {
        samples.push_back(*sample);
      }
      provider->Submit(1, size_bytes, std::move(samples));
      break;
    }
    case SystemKind::kBatchedHs: {
      auto* provider = static_cast<BatchedProvider*>(providers_[v].get());
      std::vector<TxSample> samples;
      if (sample.has_value()) {
        samples.push_back(*sample);
      }
      provider->Submit(1, size_bytes, std::move(samples));
      break;
    }
  }
}

void Cluster::SubmitTxPayload(ValidatorId v, WorkerId w, Bytes payload,
                              std::optional<TxSample> sample) {
  if (workers_.empty()) {
    LOG_ERROR() << "SubmitTxPayload requires a Narwhal-based system; dropping tx";
    return;
  }
  workers_[v][w % config_.workers_per_validator]->SubmitTransaction(std::move(payload), sample);
}

void Cluster::CrashValidator(ValidatorId v, TimePoint when) {
  if (!topology_.primary_of.empty()) {
    faults_.CrashAt(topology_.primary_of[v], when);
    for (uint32_t id : topology_.worker_of[v]) {
      faults_.CrashAt(id, when);
    }
  }
  if (!consensus_net_ids_.empty()) {
    faults_.CrashAt(consensus_net_ids_[v], when);
  }
}

void Cluster::RestartValidator(ValidatorId v, TimePoint crash_at, TimePoint recover_at) {
  CrashValidator(v, crash_at);
  if (!SupportsRestart()) {
    LOG_ERROR() << "restart unsupported for " << SystemName(config_.system) << "; validator "
                << v << " stays down";
    return;
  }
  if (!topology_.primary_of.empty()) {
    faults_.RecoverAt(topology_.primary_of[v], recover_at);
    for (uint32_t id : topology_.worker_of[v]) {
      faults_.RecoverAt(id, recover_at);
    }
  }
  if (!consensus_net_ids_.empty()) {
    faults_.RecoverAt(consensus_net_ids_[v], recover_at);
  }
  scheduler_.ScheduleAt(recover_at, [this, v] { RebuildValidator(v); });
}

void Cluster::RebuildValidator(ValidatorId v) {
  const uint32_t w = config_.workers_per_validator;

  // Fold the dying objects' cert-cache activity into the run totals before
  // their pointers go away.
  metrics_.UnregisterCertCache(&primaries_[v]->cert_cache());
  if (!hs_nodes_.empty()) {
    metrics_.UnregisterCertCache(&hs_nodes_[v]->cert_cache());
  }

  // Tear down top-down: the consensus layer references the primary. The
  // destructors flip each object's alive flag, so timers the dead objects
  // left in the scheduler fire as no-ops.
  if (!tusks_.empty()) {
    tusks_[v].reset();
  }
  if (!bullsharks_.empty()) {
    bullsharks_[v].reset();
  }
  if (!hs_nodes_.empty()) {
    hs_nodes_[v].reset();
  }
  if (!providers_.empty()) {
    providers_[v].reset();
  }
  for (WorkerId wi = 0; wi < w; ++wi) {
    workers_[v][wi].reset();
  }
  primaries_[v].reset();

  // Reconstruct bottom-up from the durable stores. Net ids and machines are
  // reused — the replacement is in-place as far as the network is concerned.
  primaries_[v] = std::make_unique<Primary>(v, committee_, config_.narwhal, network_.get(),
                                            &topology_, signers_[v].get());
  primaries_[v]->set_net_id(topology_.primary_of[v]);
  primaries_[v]->set_store(primary_stores_[v].get());
  primaries_[v]->Recover();
  metrics_.RegisterCertCache(&primaries_[v]->cert_cache());
  network_->ReplaceNode(topology_.primary_of[v], primaries_[v].get());

  for (WorkerId wi = 0; wi < w; ++wi) {
    workers_[v][wi] =
        std::make_unique<Worker>(v, wi, committee_, config_.narwhal, network_.get(), &topology_,
                                 worker_stores_[v][wi].get(), &directory_);
    workers_[v][wi]->set_net_id(topology_.worker_of[v][wi]);
    workers_[v][wi]->Recover();
    network_->ReplaceNode(topology_.worker_of[v][wi], workers_[v][wi].get());
  }

  if (config_.system == SystemKind::kTusk) {
    tusks_[v] = std::make_unique<Tusk>(primaries_[v].get(), committee_, &coin_,
                                       config_.narwhal.gc_depth);
    tusks_[v]->set_store(consensus_stores_[v].get());
    tusks_[v]->Recover();
    WireTuskMetricsFor(v);
  } else if (config_.system == SystemKind::kBullshark) {
    bullsharks_[v] = std::make_unique<Bullshark>(primaries_[v].get(), committee_,
                                                 config_.narwhal.gc_depth, config_.bullshark);
    bullsharks_[v]->set_store(consensus_stores_[v].get());
    bullsharks_[v]->Recover();
    WireTuskMetricsFor(v);
  } else {  // kNarwhalHs (the only other SupportsRestart() system).
    auto provider = std::make_unique<NarwhalProvider>(v, committee_, primaries_[v].get(),
                                                      &directory_, config_.narwhal.gc_depth);
    provider->set_store(consensus_stores_[v].get());
    NarwhalProvider* np = provider.get();
    providers_[v] = std::move(provider);
    hs_nodes_[v] = std::make_unique<HotStuff>(v, committee_, config_.hotstuff, network_.get(),
                                              signers_[v].get(), providers_[v].get());
    hs_nodes_[v]->set_net_id(consensus_net_ids_[v]);
    hs_nodes_[v]->set_store(consensus_stores_[v].get());
    metrics_.RegisterCertCache(&hs_nodes_[v]->cert_cache());
    WireHotStuffValidator(v);
    np->Recover();
    hs_nodes_[v]->Recover();
    network_->ReplaceNode(consensus_net_ids_[v], hs_nodes_[v].get());
  }

  // The executor object survived the rebuild (it is the validator's
  // application state; commits are not re-delivered across a recovery), but
  // its commit hook died with the old consensus object — re-register it.
  if (!executors_.empty()) {
    WireExecutorFor(v);
  }

  // Tracing re-attaches only after recovery, so replayed records do not get
  // re-stamped as fresh protocol events.
  if (tracer_ != nullptr) {
    primaries_[v]->set_tracer(tracer_.get());
    for (WorkerId wi = 0; wi < w; ++wi) {
      workers_[v][wi]->set_tracer(tracer_.get());
    }
    if (!tusks_.empty()) {
      tusks_[v]->set_tracer(tracer_.get());
    }
    if (!bullsharks_.empty()) {
      bullsharks_[v]->set_tracer(tracer_.get());
    }
    if (!hs_nodes_.empty()) {
      hs_nodes_[v]->set_tracer(tracer_.get());
    }
  }

  RecoveryStats stats;
  stats.validator = v;
  stats.recovered_at = scheduler_.now();
  stats.records_replayed = primaries_[v]->recovered_store_records();
  stats.resume_round = primaries_[v]->round();
  recovery_stats_.push_back(stats);

  // Observers re-register their per-node hooks before anything runs.
  if (on_validator_rebuilt_) {
    on_validator_rebuilt_(v);
  }

  // Rejoin: the primary resumes at its recovered round (requesting any
  // missing headers), workers restart empty-pipelined, and consensus
  // re-evaluates its commit rule over the recovered state.
  primaries_[v]->OnStart();
  for (WorkerId wi = 0; wi < w; ++wi) {
    workers_[v][wi]->OnStart();
  }
  if (!tusks_.empty()) {
    tusks_[v]->Resume();
  }
  if (!bullsharks_.empty()) {
    bullsharks_[v]->Resume();
  }
  if (!hs_nodes_.empty()) {
    hs_nodes_[v]->OnStart();
  }
}

void Cluster::IsolateValidator(ValidatorId v, TimePoint start, TimePoint end) {
  if (!topology_.primary_of.empty()) {
    faults_.Isolate(topology_.primary_of[v], start, end);
    for (uint32_t id : topology_.worker_of[v]) {
      faults_.Isolate(id, start, end);
    }
  }
  if (!consensus_net_ids_.empty()) {
    faults_.Isolate(consensus_net_ids_[v], start, end);
  }
}

}  // namespace nt
