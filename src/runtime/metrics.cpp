#include "src/runtime/metrics.h"

namespace nt {

void Metrics::OnCommit(ValidatorId at, ValidatorId latency_owner, uint64_t num_txs,
                       uint64_t payload_bytes, const std::vector<TxSample>& samples) {
  TimePoint now = scheduler_->now();
  // Commit feedback for re-submitting clients, regardless of the window.
  for (const TxSample& s : samples) {
    committed_samples_.insert(s.tx_id);
  }
  if (now < window_start_ || now >= window_end_) {
    return;
  }
  if (at == observer_) {
    committed_txs_ += num_txs;
    committed_bytes_ += payload_bytes;
  }
  if (at == latency_owner) {
    for (const TxSample& s : samples) {
      if (s.submit_time >= window_start_) {
        latency_.Add(ToSeconds(now - s.submit_time));
      }
    }
  }
}

}  // namespace nt
