#include "src/runtime/metrics.h"

namespace nt {
namespace {

// Counter delta that tolerates the counter moving backwards (a cache was
// Clear()ed or ResetStats() mid-run): clamp to zero rather than wrap.
uint64_t ClampedDelta(uint64_t current, uint64_t baseline) {
  return current < baseline ? 0 : current - baseline;
}

}  // namespace

void Metrics::RegisterCertCache(const VerifiedCertCache* cache) {
  cert_caches_.push_back({cache, cache->stats()});
}

void Metrics::UnregisterCertCache(const VerifiedCertCache* cache) {
  for (auto it = cert_caches_.begin(); it != cert_caches_.end(); ++it) {
    if (it->cache == cache) {
      retired_cache_hits_ += ClampedDelta(cache->stats().hits, it->baseline.hits);
      retired_cache_misses_ += ClampedDelta(cache->stats().misses, it->baseline.misses);
      cert_caches_.erase(it);
      return;
    }
  }
}

uint64_t Metrics::cert_cache_hits() const {
  uint64_t hits = retired_cache_hits_ +
                  ClampedDelta(VerifiedCertCache::Combined().hits, cert_cache_baseline_.hits);
  for (const RegisteredCache& rc : cert_caches_) {
    hits += ClampedDelta(rc.cache->stats().hits, rc.baseline.hits);
  }
  return hits;
}

uint64_t Metrics::cert_cache_misses() const {
  uint64_t misses =
      retired_cache_misses_ +
      ClampedDelta(VerifiedCertCache::Combined().misses, cert_cache_baseline_.misses);
  for (const RegisteredCache& rc : cert_caches_) {
    misses += ClampedDelta(rc.cache->stats().misses, rc.baseline.misses);
  }
  return misses;
}

void Metrics::OnCommit(ValidatorId at, ValidatorId latency_owner, uint64_t num_txs,
                       uint64_t payload_bytes, const std::vector<TxSample>& samples) {
  TimePoint now = scheduler_->now();
  // Commit feedback for re-submitting clients, regardless of the window.
  for (const TxSample& s : samples) {
    committed_samples_.insert(s.tx_id);
  }
  if (at == latency_owner) {
    // Stamp traced commits here — at the same validator latency_ samples
    // from — so the tracer's per-transaction e2e equals the latency_ sample
    // for the same tx. Unconditional on the window: ComputeBreakdown applies
    // the identical window filter itself.
    NT_TRACE(tracer_, OnSamplesCommitted(samples, now));
  }
  if (now < window_start_ || now >= window_end_) {
    return;
  }
  if (at == observer_) {
    committed_txs_ += num_txs;
    committed_bytes_ += payload_bytes;
  }
  if (at == latency_owner) {
    for (const TxSample& s : samples) {
      if (s.submit_time >= window_start_) {
        latency_.Add(ToSeconds(now - s.submit_time));
      }
    }
  }
}

}  // namespace nt
