// Rate-controlled load generation, one generator per (validator, worker) —
// the paper's "one benchmark client per worker submitting transactions at a
// fixed rate" (§7). Every `tx_sample_rate`-th transaction carries a latency
// sample tracked end-to-end.
#ifndef SRC_RUNTIME_CLIENT_H_
#define SRC_RUNTIME_CLIENT_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/shard/workload.h"

namespace nt {

class LoadGenerator {
 public:
  struct Options {
    double rate_tps = 1000;      // Transactions per second from this client.
    uint64_t tx_size = 512;      // Bytes per transaction (paper baseline).
    uint64_t sample_rate = 100;  // One latency sample per this many txs.
    TimeDelta tick = Millis(10); // Submission granularity.
    TimePoint stop_at = kNever;  // Stop submitting at this time.

    // Transfer mode (sharded execution lanes, §8.4): when set, each
    // submission is an encoded ExecTx drawn from this workload instead of
    // `tx_size` synthetic bytes. The workload must outlive the generator.
    // Narwhal-based systems only (explicit payloads need workers). Draws come
    // from a per-generator stream derived from the cluster seed, so adding a
    // client never perturbs another's transaction sequence.
    const TransferWorkload* transfer = nullptr;

    // Client re-submission (paper §8.4): if a tracked transaction is not
    // committed within this timeout, submit it again — to the next validator
    // when `failover` is set (covers a crashed or censoring entry point).
    // 0 disables.
    TimeDelta resubmit_timeout = 0;
    bool failover = true;
    uint32_t max_resubmits = 8;
  };

  LoadGenerator(Cluster* cluster, ValidatorId validator, WorkerId worker, Options options);

  // Schedules the first tick.
  void Start();

  uint64_t submitted_txs() const { return submitted_; }
  uint64_t resubmitted_txs() const { return resubmitted_; }
  // Tracked transactions this client gave up on (max_resubmits exhausted).
  uint64_t abandoned_txs() const { return abandoned_; }

 private:
  struct PendingTx {
    uint64_t tx_id = 0;
    TimePoint submit_time = 0;    // Original submission (latency anchor).
    TimePoint last_attempt = 0;
    uint32_t attempts = 1;
    ValidatorId target = 0;
    // Transfer mode: the exact payload to resubmit (a retry must be the same
    // transaction — the worker's dedup window absorbs same-entry duplicates).
    Bytes payload;
  };

  void Tick();
  void CheckResubmits(TimePoint now);

  Cluster* cluster_;
  ValidatorId validator_;
  WorkerId worker_;
  Options options_;
  Rng rng_;  // Transfer-mode draws (derived per generator; unused otherwise).
  double carry_ = 0;  // Fractional transactions carried across ticks.
  uint64_t submitted_ = 0;
  uint64_t resubmitted_ = 0;
  uint64_t abandoned_ = 0;
  uint64_t until_sample_ = 0;
  std::vector<PendingTx> pending_;  // Tracked (sampled) not-yet-committed txs.
};

}  // namespace nt

#endif  // SRC_RUNTIME_CLIENT_H_
