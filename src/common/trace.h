// Structured transaction-lifecycle tracing (observability layer).
//
// The benchmark harness historically reported only end-to-end aggregates, so
// latency could not be attributed to dissemination vs. consensus vs.
// execution. The Tracer records, per *sampled* transaction, a timestamp for
// every lifecycle stage —
//
//   client submit -> worker batch seal -> batch quorum-ack -> header
//   proposal -> certificate formed -> consensus commit -> executor apply
//
// — plus named counters (retransmissions, resubmits), per-digest retry-round
// tracking (for bounded-backoff assertions), and per-node gauges sampled on a
// timer (NIC egress backlog/utilization, DAG round/size, scheduler
// pending-events, cert-cache hit rate). From these it derives a telescoping
// per-stage latency breakdown whose stages sum exactly to the end-to-end
// latency per transaction, and exports a Chrome trace-event JSON file
// (chrome://tracing / Perfetto) for visual inspection of a single run.
//
// Cost model: one Tracer per Cluster, enabled only on demand. Every emit
// point goes through the NT_TRACE macro below, which tests a raw pointer that
// is nullptr when tracing is off (one predictable branch, arguments not
// evaluated); defining NT_TRACE_DISABLED at compile time removes the emit
// points entirely (the no-op sink inlines away), so Tier-1 benchmark numbers
// are unaffected.
#ifndef SRC_COMMON_TRACE_H_
#define SRC_COMMON_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/crypto/hash.h"
#include "src/types/committee.h"

namespace nt {

struct TxSample;  // src/types/types.h — only referenced, never copied here.
struct BatchRef;

class Tracer;

// Emit-point guard. Arguments (including any now() call) are evaluated only
// when a tracer is attached; with NT_TRACE_DISABLED the whole statement is
// compiled out.
#ifdef NT_TRACE_DISABLED
#define NT_TRACE(tracer, call) \
  do {                         \
  } while (0)
#else
#define NT_TRACE(tracer, call)  \
  do {                          \
    if ((tracer) != nullptr) {  \
      (tracer)->call;           \
    }                           \
  } while (0)
#endif

// Telescoping per-stage latency split over sampled transactions: every stage
// measures from the previous recorded stage, so per transaction
//   batch + cert + commit + exec == e2e
// exactly (missing intermediate stages contribute zero and pass the anchor
// through). Aggregated with the same measurement window as Metrics.
struct LatencyBreakdown {
  SampleStats batch_s;   // submit -> batch quorum-ack (seal + dissemination).
  SampleStats cert_s;    // quorum-ack -> certificate of availability formed.
  SampleStats commit_s;  // certificate -> consensus commit (at the validator
                         // the client submitted to, as Metrics measures).
  SampleStats exec_s;    // commit -> executor apply (zero without an executor).
  SampleStats e2e_s;     // submit -> last recorded stage.
  uint64_t completed_txs = 0;   // Samples committed inside the window.
  uint64_t incomplete_txs = 0;  // Samples submitted in-window, never committed.
};

class Tracer {
 public:
  // Sentinel for "stage not reached". Simulation time starts at 0, so 0 is a
  // valid timestamp and cannot be the sentinel.
  static constexpr TimePoint kUnset = -1;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- transaction lifecycle (sampled transactions only) ---------------------

  void OnTxSubmit(uint64_t tx_id, ValidatorId target, TimePoint now);
  void OnTxResubmit(uint64_t tx_id, ValidatorId target, uint32_t attempt, TimePoint now);
  void OnTxAbandoned(uint64_t tx_id, TimePoint now);
  void OnBatchSealed(ValidatorId v, WorkerId w, const Digest& batch,
                     const std::vector<TxSample>& samples, TimePoint now);
  void OnBatchQuorum(ValidatorId v, const Digest& batch, TimePoint now);
  void OnHeaderProposed(ValidatorId v, const Digest& header, Round round,
                        const std::vector<BatchRef>& batches, TimePoint now);
  void OnCertFormed(ValidatorId v, const Digest& header, Round round, TimePoint now);
  // Consensus commit of a header/block at validator `v` (every correct
  // validator commits every block; per-transaction commit stamps come from
  // OnSamplesCommitted instead, which Metrics filters to the validator the
  // client submitted to).
  void OnHeaderCommitted(ValidatorId v, const Digest& header, TimePoint now);
  void OnSamplesCommitted(const std::vector<TxSample>& samples, TimePoint now);
  void OnExecuted(ValidatorId v, const Digest& header, TimePoint now);

  // --- counters ---------------------------------------------------------------

  void IncrCounter(const std::string& name, uint64_t delta = 1);
  // Records one retransmission round of `kind` for `digest` carrying
  // `messages` messages. Rounds per digest are what the bounded-backoff
  // tests assert on.
  void IncrRetryRound(const std::string& kind, const Digest& digest, uint64_t messages);

  uint64_t counter(const std::string& name) const;
  uint32_t retry_rounds(const std::string& kind, const Digest& digest) const;
  // Highest number of retransmission rounds any single digest of `kind` saw.
  uint32_t max_retry_rounds(const std::string& kind) const;
  uint64_t total_retry_rounds(const std::string& kind) const;

  // --- gauges -----------------------------------------------------------------

  // Sampled by the cluster's gauge timer; `pid` groups the counter track in
  // the Chrome trace (0 = cluster-wide, v+1 = validator v).
  using GaugeFn = std::function<double(TimePoint now)>;
  void RegisterGauge(const std::string& name, uint32_t pid, GaugeFn fn);
  void SampleGauges(TimePoint now);
  // Summary stats over all samples of a gauge; nullptr if never sampled.
  const SampleStats* gauge_stats(const std::string& name) const;

  // --- reporting --------------------------------------------------------------

  LatencyBreakdown ComputeBreakdown(TimePoint window_start, TimePoint window_end) const;

  // Writes the Chrome trace-event JSON ({"traceEvents":[...]}) to `path`.
  // Returns false if the file could not be written.
  bool WriteChromeTrace(const std::string& path) const;

  size_t traced_txs() const { return txs_.size(); }

 private:
  struct TxRecord {
    ValidatorId target = UINT32_MAX;
    TimePoint submit = kUnset;
    TimePoint sealed = kUnset;
    TimePoint quorum = kUnset;
    TimePoint proposed = kUnset;
    TimePoint cert = kUnset;
    TimePoint commit = kUnset;
    TimePoint exec = kUnset;
    uint32_t resubmits = 0;
    bool abandoned = false;
  };
  struct BatchRecord {
    ValidatorId validator = 0;
    WorkerId worker = 0;
    TimePoint sealed = kUnset;
    TimePoint quorum = kUnset;
    uint32_t num_samples = 0;
  };
  struct HeaderRecord {
    ValidatorId author = 0;
    Round round = 0;
    TimePoint proposed = kUnset;
    TimePoint cert = kUnset;
    TimePoint committed = kUnset;         // Earliest commit at any validator.
    TimePoint author_committed = kUnset;  // Commit at the proposing validator.
    TimePoint executed = kUnset;
    std::vector<uint64_t> tx_ids;
  };
  struct Gauge {
    std::string name;
    uint32_t pid = 0;
    GaugeFn fn;
    std::vector<std::pair<TimePoint, double>> samples;
    SampleStats stats;
  };

  static void Stamp(TimePoint* slot, TimePoint now) {
    if (*slot == kUnset) {
      *slot = now;
    }
  }

  std::map<uint64_t, TxRecord> txs_;
  std::map<Digest, std::vector<uint64_t>> batch_txs_;
  std::map<Digest, BatchRecord> batches_;
  std::map<Digest, HeaderRecord> headers_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, std::map<Digest, uint32_t>> retry_rounds_;
  std::vector<Gauge> gauges_;
};

}  // namespace nt

#endif  // SRC_COMMON_TRACE_H_
