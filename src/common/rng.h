// Deterministic random number generation. Every stochastic component
// (latency jitter, client arrivals, key generation, fault injection) draws
// from its own `Rng` derived from a root seed plus a string label, so adding
// a consumer never perturbs the stream seen by another.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string_view>

namespace nt {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Derives an independent child stream from this generator's seed space and
  // a label. Stable across runs for the same (seed, label).
  static Rng Derive(uint64_t root_seed, std::string_view label) {
    // FNV-1a over the label, mixed with the root seed.
    uint64_t h = 14695981039346656037ull;
    for (char c : label) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    return Rng(SplitMix(root_seed ^ h));
  }

  uint64_t NextU64() { return engine_(); }

  // Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) {
    std::uniform_int_distribution<uint64_t> dist(0, n - 1);
    return dist(engine_);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Exponential with the given mean (> 0).
  double NextExponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  // Normal with the given mean and standard deviation.
  double NextNormal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

  std::mt19937_64& engine() { return engine_; }

 private:
  static uint64_t SplitMix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace nt

#endif  // SRC_COMMON_RNG_H_
