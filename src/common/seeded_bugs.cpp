#include "src/common/seeded_bugs.h"

namespace nt {
namespace seeded_bugs {

bool accept_2f_certs = false;
bool skip_tusk_support = false;
bool skip_bullshark_support = false;
bool skip_cross_shard_lock = false;

}  // namespace seeded_bugs
}  // namespace nt
