// Byte-buffer primitives shared by every module: the `Bytes` alias, hex
// encoding/decoding, and constant-time comparison for secret material.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nt {

using Bytes = std::vector<uint8_t>;

// Encodes `data` as lowercase hex.
std::string ToHex(const uint8_t* data, size_t len);
std::string ToHex(const Bytes& data);

// Decodes a hex string (upper or lower case). Returns std::nullopt on any
// malformed input (odd length, non-hex characters).
std::optional<Bytes> FromHex(std::string_view hex);

// Compares two equal-length buffers without data-dependent branches. Returns
// true iff the buffers are byte-wise equal. Intended for MAC/signature
// comparisons where early-exit timing would leak information.
bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t len);

}  // namespace nt

#endif  // SRC_COMMON_BYTES_H_
