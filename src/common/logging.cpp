#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace nt {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line, msg.c_str());
}

}  // namespace nt
