// Minimal leveled logger. Protocol code logs through LOG_* macros; the
// global level defaults to kWarn so tests and benchmarks stay quiet unless a
// scenario opts into verbosity.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace nt {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace nt

#define NT_LOG(level)                          \
  if (::nt::GetLogLevel() <= (level))          \
  ::nt::LogStream(level, __FILE__, __LINE__)

#define LOG_TRACE() NT_LOG(::nt::LogLevel::kTrace)
#define LOG_DEBUG() NT_LOG(::nt::LogLevel::kDebug)
#define LOG_INFO() NT_LOG(::nt::LogLevel::kInfo)
#define LOG_WARN() NT_LOG(::nt::LogLevel::kWarn)
#define LOG_ERROR() NT_LOG(::nt::LogLevel::kError)

#endif  // SRC_COMMON_LOGGING_H_
