// Test-only protocol weakenings ("seeded bugs") used to mutation-test the
// deterministic simulation harness (src/check/): each flag re-introduces a
// classic DAG-BFT bug behind a global switch that defaults to off. Production
// code consults the flags only at the exact check being weakened, so with all
// flags false the protocol paths are byte-for-byte the honest ones.
//
// The harness's acceptance gate (tests/check_test.cpp, `ntcheck --bug ...`)
// asserts that enabling any flag makes an invariant violation surface within
// a bounded number of fuzzed schedules — proving the checker can actually
// catch the class of bug the paper's safety argument rules out.
#ifndef SRC_COMMON_SEEDED_BUGS_H_
#define SRC_COMMON_SEEDED_BUGS_H_

namespace nt {
namespace seeded_bugs {

// Certificates of availability are accepted (and formed) with only 2f
// distinct signatures instead of 2f+1 — breaks quorum intersection, so an
// equivocating author can certify two conflicting headers for one round
// (violates invariant: at most one certificate per (round, author)).
extern bool accept_2f_certs;

// Tusk's commit rule skips the f+1 second-round support check and commits
// every elected leader present in the local DAG — breaks commit agreement
// (validators with different views commit different leader chains).
extern bool skip_tusk_support;

// Bullshark's commit rule accepts f round-2w support votes instead of f+1 —
// one vote short of quorum intersection, so an anchor can commit at one
// validator while remaining forever invisible (neither direct-committed nor
// path-ordered) at others: committed sequences fork (violates commit-prefix
// consistency / agreement with ReplayBullshark).
extern bool skip_bullshark_support;

// The sharded executor skips phase 1 of the cross-shard two-phase apply (the
// funds check + debit at the source lane) and goes straight to the credit —
// the classic lost-lock bug in deterministic cross-shard commit. Every
// cross-shard transfer then creates tokens out of thin air (violates
// conservation-of-balance) and the lanes' digest chains diverge from the
// honest ReplayShards oracle.
extern bool skip_cross_shard_lock;

// RAII guard for tests: sets a flag, restores the previous value on exit.
class Scoped {
 public:
  Scoped(bool* flag, bool value) : flag_(flag), saved_(*flag) { *flag = value; }
  ~Scoped() { *flag_ = saved_; }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  bool* flag_;
  bool saved_;
};

}  // namespace seeded_bugs
}  // namespace nt

#endif  // SRC_COMMON_SEEDED_BUGS_H_
