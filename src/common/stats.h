// Small online/offline statistics helpers used by the benchmark harness and
// metrics collection: mean, standard deviation, and percentiles over samples.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace nt {

// Accumulates scalar samples and answers summary queries. Percentile queries
// sort a copy lazily; intended for end-of-run reporting, not hot paths.
class SampleStats {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sum_ += v;
    sum_sq_ += v * v;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const { return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size()); }

  double StdDev() const {
    if (samples_.size() < 2) {
      return 0.0;
    }
    double n = static_cast<double>(samples_.size());
    double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
  }

  double Min() const {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  // p in [0, 100]. Nearest-rank percentile.
  double Percentile(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace nt

#endif  // SRC_COMMON_STATS_H_
