// Small online/offline statistics helpers used by the benchmark harness and
// metrics collection: mean, standard deviation, and percentiles over samples.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace nt {

// Accumulates scalar samples and answers summary queries. The sorted view
// used by Percentile is memoized and invalidated on Add, and min/max are
// tracked incrementally, so repeated queries (per-stage latency breakdowns
// ask for several percentiles per stage) cost O(1) after the first sort.
class SampleStats {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sum_ += v;
    sum_sq_ += v * v;
    if (samples_.size() == 1) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    sorted_valid_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const { return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size()); }

  double StdDev() const {
    if (samples_.size() < 2) {
      return 0.0;
    }
    double n = static_cast<double>(samples_.size());
    double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
  }

  double Min() const { return samples_.empty() ? 0.0 : min_; }

  double Max() const { return samples_.empty() ? 0.0 : max_; }

  // p in [0, 100]. Linear interpolation between the two closest ranks
  // (NumPy's default), not nearest-rank: Percentile(50) of {1, 2} is 1.5.
  double Percentile(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    if (!sorted_valid_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace nt

#endif  // SRC_COMMON_STATS_H_
