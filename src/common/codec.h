// Canonical little-endian binary codec. Every protocol message, digest
// pre-image, and persisted record is encoded through Writer/Reader so that
// (a) digests/signatures are computed over a unique canonical form and
// (b) the simulated network can account wire sizes faithfully.
#ifndef SRC_COMMON_CODEC_H_
#define SRC_COMMON_CODEC_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace nt {

// Appends primitive values to an owned byte buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  // Raw bytes, no length prefix (fixed-size fields like digests/keys).
  void PutRaw(const uint8_t* data, size_t len) { buf_.insert(buf_.end(), data, data + len); }
  void PutRaw(const Bytes& data) { PutRaw(data.data(), data.size()); }
  template <size_t N>
  void PutRaw(const std::array<uint8_t, N>& data) {
    PutRaw(data.data(), N);
  }

  // u32 length prefix followed by the bytes (variable-size fields).
  void PutVar(const Bytes& data) {
    PutU32(static_cast<uint32_t>(data.size()));
    PutRaw(data);
  }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutLittleEndian(uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

// Consumes primitive values from a borrowed byte span. All getters are
// total: on underflow they set a sticky failure flag and return zeroed
// values, so parse functions check `ok()` once at the end.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Reader(const Bytes& data) : Reader(data.data(), data.size()) {}

  uint8_t GetU8() { return static_cast<uint8_t>(GetLittleEndian(1)); }
  uint16_t GetU16() { return static_cast<uint16_t>(GetLittleEndian(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetLittleEndian(4)); }
  uint64_t GetU64() { return GetLittleEndian(8); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  bool GetBool() { return GetU8() != 0; }

  bool GetRaw(uint8_t* out, size_t n) {
    if (!Ensure(n)) {
      std::memset(out, 0, n);
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  template <size_t N>
  std::array<uint8_t, N> GetArray() {
    std::array<uint8_t, N> out{};
    GetRaw(out.data(), N);
    return out;
  }
  Bytes GetVar() {
    uint32_t n = GetU32();
    if (!Ensure(n)) {
      return {};
    }
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string GetString() {
    Bytes b = GetVar();
    return std::string(b.begin(), b.end());
  }

  // True iff no getter has underflowed so far.
  bool ok() const { return ok_; }
  // True iff the whole input was consumed and no underflow occurred.
  bool AtEnd() const { return ok_ && pos_ == len_; }
  size_t remaining() const { return len_ - pos_; }

 private:
  bool Ensure(size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  uint64_t GetLittleEndian(int n) {
    if (!Ensure(static_cast<size_t>(n))) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace nt

#endif  // SRC_COMMON_CODEC_H_
