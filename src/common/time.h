// Simulated-time primitives. All protocol and network code measures time in
// integer microseconds on the discrete-event simulator clock; wall-clock time
// never leaks into protocol logic so runs replay deterministically.
#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>

namespace nt {

// A point on the simulation clock, in microseconds since simulation start.
using TimePoint = int64_t;
// A span of simulated time, in microseconds.
using TimeDelta = int64_t;

constexpr TimeDelta Micros(int64_t us) { return us; }
constexpr TimeDelta Millis(int64_t ms) { return ms * 1000; }
constexpr TimeDelta Seconds(int64_t s) { return s * 1000 * 1000; }

constexpr double ToSeconds(TimeDelta d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMillis(TimeDelta d) { return static_cast<double>(d) / 1e3; }

// Sentinel meaning "no deadline".
constexpr TimePoint kNever = INT64_MAX;

}  // namespace nt

#endif  // SRC_COMMON_TIME_H_
