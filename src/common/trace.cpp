#include "src/common/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/types/types.h"

namespace nt {

// ------------------------------------------------------------ lifecycle events

void Tracer::OnTxSubmit(uint64_t tx_id, ValidatorId target, TimePoint now) {
  TxRecord& t = txs_[tx_id];
  t.target = target;
  Stamp(&t.submit, now);
}

void Tracer::OnTxResubmit(uint64_t tx_id, ValidatorId target, uint32_t attempt, TimePoint now) {
  TxRecord& t = txs_[tx_id];
  if (t.target == UINT32_MAX) {
    t.target = target;
  }
  Stamp(&t.submit, now);
  t.resubmits = std::max(t.resubmits, attempt);
  IncrCounter("tx/resubmits");
}

void Tracer::OnTxAbandoned(uint64_t tx_id, TimePoint now) {
  (void)now;
  txs_[tx_id].abandoned = true;
  IncrCounter("tx/abandoned");
}

void Tracer::OnBatchSealed(ValidatorId v, WorkerId w, const Digest& batch,
                           const std::vector<TxSample>& samples, TimePoint now) {
  BatchRecord& b = batches_[batch];
  if (b.sealed != kUnset) {
    return;  // Duplicate seal event (cannot happen; seqs make digests unique).
  }
  b.validator = v;
  b.worker = w;
  b.sealed = now;
  b.num_samples = static_cast<uint32_t>(samples.size());
  if (samples.empty()) {
    return;
  }
  std::vector<uint64_t>& ids = batch_txs_[batch];
  for (const TxSample& s : samples) {
    TxRecord& t = txs_[s.tx_id];
    // Backfill the submit stamp from the sample itself: covers transactions
    // submitted directly through Cluster::SubmitTx (no LoadGenerator emit).
    Stamp(&t.submit, s.submit_time);
    Stamp(&t.sealed, now);
    ids.push_back(s.tx_id);
  }
}

void Tracer::OnBatchQuorum(ValidatorId v, const Digest& batch, TimePoint now) {
  (void)v;
  auto it = batches_.find(batch);
  if (it != batches_.end()) {
    Stamp(&it->second.quorum, now);
  }
  auto txs = batch_txs_.find(batch);
  if (txs != batch_txs_.end()) {
    for (uint64_t id : txs->second) {
      Stamp(&txs_[id].quorum, now);
    }
  }
}

void Tracer::OnHeaderProposed(ValidatorId v, const Digest& header, Round round,
                              const std::vector<BatchRef>& batches, TimePoint now) {
  HeaderRecord& h = headers_[header];
  h.author = v;
  h.round = round;
  Stamp(&h.proposed, now);
  for (const BatchRef& ref : batches) {
    auto txs = batch_txs_.find(ref.digest);
    if (txs == batch_txs_.end()) {
      continue;
    }
    for (uint64_t id : txs->second) {
      Stamp(&txs_[id].proposed, now);
      h.tx_ids.push_back(id);
    }
  }
}

void Tracer::OnCertFormed(ValidatorId v, const Digest& header, Round round, TimePoint now) {
  HeaderRecord& h = headers_[header];
  if (h.proposed == kUnset) {  // Cert observed before (or without) a propose event.
    h.author = v;
    h.round = round;
  }
  Stamp(&h.cert, now);
  for (uint64_t id : h.tx_ids) {
    Stamp(&txs_[id].cert, now);
  }
}

void Tracer::OnHeaderCommitted(ValidatorId v, const Digest& header, TimePoint now) {
  HeaderRecord& h = headers_[header];
  Stamp(&h.committed, now);
  if (v == h.author) {
    Stamp(&h.author_committed, now);
  }
}

void Tracer::OnSamplesCommitted(const std::vector<TxSample>& samples, TimePoint now) {
  for (const TxSample& s : samples) {
    TxRecord& t = txs_[s.tx_id];
    Stamp(&t.submit, s.submit_time);
    Stamp(&t.commit, now);
  }
}

void Tracer::OnExecuted(ValidatorId v, const Digest& header, TimePoint now) {
  auto it = headers_.find(header);
  if (it == headers_.end()) {
    return;
  }
  Stamp(&it->second.executed, now);
  for (uint64_t id : it->second.tx_ids) {
    TxRecord& t = txs_[id];
    if (t.target == v) {
      Stamp(&t.exec, now);
    }
  }
}

// ----------------------------------------------------------------- counters

void Tracer::IncrCounter(const std::string& name, uint64_t delta) { counters_[name] += delta; }

void Tracer::IncrRetryRound(const std::string& kind, const Digest& digest, uint64_t messages) {
  ++retry_rounds_[kind][digest];
  IncrCounter(kind + "/msgs", messages);
  IncrCounter(kind + "/rounds");
}

uint64_t Tracer::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

uint32_t Tracer::retry_rounds(const std::string& kind, const Digest& digest) const {
  auto it = retry_rounds_.find(kind);
  if (it == retry_rounds_.end()) {
    return 0;
  }
  auto d = it->second.find(digest);
  return d == it->second.end() ? 0 : d->second;
}

uint32_t Tracer::max_retry_rounds(const std::string& kind) const {
  auto it = retry_rounds_.find(kind);
  if (it == retry_rounds_.end()) {
    return 0;
  }
  uint32_t max_rounds = 0;
  for (const auto& [digest, rounds] : it->second) {
    max_rounds = std::max(max_rounds, rounds);
  }
  return max_rounds;
}

uint64_t Tracer::total_retry_rounds(const std::string& kind) const {
  auto it = retry_rounds_.find(kind);
  if (it == retry_rounds_.end()) {
    return 0;
  }
  uint64_t total = 0;
  for (const auto& [digest, rounds] : it->second) {
    total += rounds;
  }
  return total;
}

// ------------------------------------------------------------------- gauges

void Tracer::RegisterGauge(const std::string& name, uint32_t pid, GaugeFn fn) {
  Gauge g;
  g.name = name;
  g.pid = pid;
  g.fn = std::move(fn);
  gauges_.push_back(std::move(g));
}

void Tracer::SampleGauges(TimePoint now) {
  for (Gauge& g : gauges_) {
    double value = g.fn(now);
    g.samples.emplace_back(now, value);
    g.stats.Add(value);
  }
}

const SampleStats* Tracer::gauge_stats(const std::string& name) const {
  for (const Gauge& g : gauges_) {
    if (g.name == name) {
      return &g.stats;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------- breakdown

LatencyBreakdown Tracer::ComputeBreakdown(TimePoint window_start, TimePoint window_end) const {
  LatencyBreakdown bd;
  for (const auto& [id, t] : txs_) {
    if (t.submit == kUnset) {
      continue;
    }
    if (t.commit == kUnset) {
      if (t.submit >= window_start && t.submit < window_end) {
        ++bd.incomplete_txs;
      }
      continue;
    }
    // Same filter as Metrics::OnCommit: committed inside the window, and
    // submitted after the warm-up started.
    if (t.commit < window_start || t.commit >= window_end || t.submit < window_start) {
      continue;
    }
    ++bd.completed_txs;
    // Telescoping stages: each measures from the previous recorded stage; a
    // missing stage contributes zero and the anchor passes through, so the
    // stages always sum exactly to e2e.
    TimePoint anchor = t.submit;
    auto stage = [&anchor](TimePoint stamp) {
      if (stamp == kUnset || stamp < anchor) {
        return 0.0;
      }
      double d = ToSeconds(stamp - anchor);
      anchor = stamp;
      return d;
    };
    bd.batch_s.Add(stage(t.quorum));
    bd.cert_s.Add(stage(t.cert));
    bd.commit_s.Add(stage(t.commit));
    bd.exec_s.Add(stage(t.exec));
    bd.e2e_s.Add(ToSeconds(anchor - t.submit));
  }
  return bd;
}

// ------------------------------------------------------- Chrome trace export

namespace {

// Event pids: 0 = cluster-wide tracks, 1+v = validator v's protocol tracks,
// 1000+v = sampled-transaction lanes of clients submitting to validator v.
constexpr uint32_t kClusterPid = 0;
constexpr uint32_t kValidatorPidBase = 1;
constexpr uint32_t kTxPidBase = 1000;
// Tids within a validator pid: 1 = primary, 10+w = worker w.
constexpr uint32_t kPrimaryTid = 1;
constexpr uint32_t kWorkerTidBase = 10;

class TraceWriter {
 public:
  explicit TraceWriter(std::FILE* f) : f_(f) { std::fprintf(f_, "{\"traceEvents\":[\n"); }

  void Meta(uint32_t pid, const char* what, const std::string& name) {
    Begin();
    std::fprintf(f_, "{\"ph\":\"M\",\"pid\":%u,\"tid\":0,\"name\":\"%s\",\"args\":{\"name\":\"%s\"}}",
                 pid, what, name.c_str());
  }

  void Span(uint32_t pid, uint64_t tid, const std::string& name, TimePoint start, TimePoint end) {
    if (start == Tracer::kUnset || end == Tracer::kUnset || end < start) {
      return;
    }
    Begin();
    std::fprintf(
        f_,
        "{\"ph\":\"X\",\"pid\":%u,\"tid\":%llu,\"name\":\"%s\",\"ts\":%lld,\"dur\":%lld}", pid,
        static_cast<unsigned long long>(tid), name.c_str(), static_cast<long long>(start),
        static_cast<long long>(std::max<TimeDelta>(end - start, 1)));
  }

  void Instant(uint32_t pid, uint64_t tid, const std::string& name, TimePoint at) {
    if (at == Tracer::kUnset) {
      return;
    }
    Begin();
    std::fprintf(f_,
                 "{\"ph\":\"i\",\"pid\":%u,\"tid\":%llu,\"name\":\"%s\",\"ts\":%lld,\"s\":\"t\"}",
                 pid, static_cast<unsigned long long>(tid), name.c_str(),
                 static_cast<long long>(at));
  }

  // Nestable async events ("b"/"e"): spans that may overlap others on the
  // same thread track (pipelined header rounds and in-flight batches do).
  // Pairs sharing a (cat, id) nest.
  void AsyncBegin(uint32_t pid, uint64_t tid, const char* cat, uint64_t id,
                  const std::string& name, TimePoint at) {
    AsyncEvent('b', pid, tid, cat, id, name, at);
  }
  void AsyncEnd(uint32_t pid, uint64_t tid, const char* cat, uint64_t id, const std::string& name,
                TimePoint at) {
    AsyncEvent('e', pid, tid, cat, id, name, at);
  }

  void Counter(uint32_t pid, const std::string& name, TimePoint at, double value) {
    Begin();
    std::fprintf(
        f_, "{\"ph\":\"C\",\"pid\":%u,\"tid\":0,\"name\":\"%s\",\"ts\":%lld,\"args\":{\"value\":%g}}",
        pid, name.c_str(), static_cast<long long>(at), value);
  }

  void Finish() { std::fprintf(f_, "\n],\"displayTimeUnit\":\"ms\"}\n"); }

 private:
  void Begin() {
    if (!first_) {
      std::fprintf(f_, ",\n");
    }
    first_ = false;
  }

  void AsyncEvent(char ph, uint32_t pid, uint64_t tid, const char* cat, uint64_t id,
                  const std::string& name, TimePoint at) {
    if (at == Tracer::kUnset) {
      return;
    }
    Begin();
    std::fprintf(f_,
                 "{\"ph\":\"%c\",\"pid\":%u,\"tid\":%llu,\"cat\":\"%s\",\"id\":\"0x%llx\","
                 "\"name\":\"%s\",\"ts\":%lld}",
                 ph, pid, static_cast<unsigned long long>(tid), cat,
                 static_cast<unsigned long long>(id), name.c_str(), static_cast<long long>(at));
  }

  std::FILE* f_;
  bool first_ = true;
};

}  // namespace

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  TraceWriter w(f);

  // Process / thread naming. Collect the validator and tx pids in use.
  std::map<uint32_t, bool> validator_pids;  // validator id -> has worker tracks.
  for (const auto& [digest, h] : headers_) {
    validator_pids.emplace(h.author, false);
  }
  for (const auto& [digest, b] : batches_) {
    validator_pids[b.validator] = true;
  }
  w.Meta(kClusterPid, "process_name", "cluster");
  for (const auto& [v, has_workers] : validator_pids) {
    w.Meta(kValidatorPidBase + v, "process_name", "validator-" + std::to_string(v));
  }
  std::map<uint32_t, uint64_t> tx_pids_seen;
  for (const auto& [id, t] : txs_) {
    if (t.target != UINT32_MAX && t.submit != kUnset) {
      ++tx_pids_seen[t.target];
    }
  }
  for (const auto& [v, count] : tx_pids_seen) {
    w.Meta(kTxPidBase + v, "process_name", "client-txs@validator-" + std::to_string(v));
  }

  // Per-batch dissemination spans on the sealing worker's track. Several
  // batches are in flight at once (the worker seals the next batch before
  // the previous one is quorum-acked), so these are async pairs, not "X".
  uint64_t async_id = 0;
  for (const auto& [digest, b] : batches_) {
    ++async_id;
    if (b.sealed == kUnset || b.quorum == kUnset || b.quorum < b.sealed) {
      continue;
    }
    w.AsyncBegin(kValidatorPidBase + b.validator, kWorkerTidBase + b.worker, "batch", async_id,
                 "batch " + DigestShort(digest), b.sealed);
    w.AsyncEnd(kValidatorPidBase + b.validator, kWorkerTidBase + b.worker, "batch", async_id,
               "batch " + DigestShort(digest), b.quorum);
  }

  // Per-header lifetimes on the author primary's track: certify
  // (propose->cert) nested in the full header lifetime (propose->commit at
  // the author). Headers are pipelined — round r commits only after rounds
  // r+1, r+2 are already proposed — so these overlap on the same track and
  // must be nestable async pairs ("b"/"e" sharing an id), not "X" spans.
  for (const auto& [digest, h] : headers_) {
    ++async_id;
    if (h.proposed == kUnset) {
      continue;
    }
    TimePoint commit = h.author_committed != kUnset ? h.author_committed : h.committed;
    TimePoint end = commit != kUnset ? commit : h.cert;
    if (end == kUnset || end <= h.proposed) {
      end = h.proposed + 1;
    }
    uint32_t pid = kValidatorPidBase + h.author;
    std::string label = "header r" + std::to_string(h.round) + " " + DigestShort(digest);
    w.AsyncBegin(pid, kPrimaryTid, "header", async_id, label, h.proposed);
    if (h.cert != kUnset && h.cert >= h.proposed && h.cert <= end) {
      w.AsyncBegin(pid, kPrimaryTid, "header", async_id, "certify", h.proposed);
      w.AsyncEnd(pid, kPrimaryTid, "header", async_id, "certify", h.cert);
    }
    w.AsyncEnd(pid, kPrimaryTid, "header", async_id, label, end);
  }

  // Per-transaction lifecycle lanes: one tid per sampled transaction, outer
  // "tx" span tiled by the telescoping stage spans.
  for (const auto& [id, t] : txs_) {
    if (t.submit == kUnset || t.target == UINT32_MAX) {
      continue;
    }
    uint32_t pid = kTxPidBase + t.target;
    TimePoint done = t.exec != kUnset ? t.exec : t.commit;
    if (done == kUnset) {
      w.Instant(pid, id, t.abandoned ? "tx-abandoned" : "tx-incomplete", t.submit);
      continue;
    }
    w.Span(pid, id, "tx " + std::to_string(id), t.submit, done);
    TimePoint anchor = t.submit;
    auto stage = [&](const char* name, TimePoint stamp) {
      if (stamp == kUnset || stamp < anchor) {
        return;
      }
      w.Span(pid, id, name, anchor, stamp);
      anchor = stamp;
    };
    stage("batch", t.quorum);
    stage("cert", t.cert);
    stage("commit", t.commit);
    stage("exec", t.exec);
    if (t.resubmits > 0) {
      w.Instant(pid, id, "resubmitted", t.submit);
    }
  }

  // Gauge counter tracks.
  for (const Gauge& g : gauges_) {
    for (const auto& [at, value] : g.samples) {
      w.Counter(g.pid, g.name, at, value);
    }
  }

  w.Finish();
  std::fclose(f);
  return true;
}

}  // namespace nt
