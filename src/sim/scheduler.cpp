#include "src/sim/scheduler.h"

#include <algorithm>

namespace nt {

namespace {
// Compact the heap once it holds this many events and the majority are
// tombstones; below this, tombstones are cheaper to skip on pop.
constexpr size_t kCompactThreshold = 64;

// SplitMix64 finalizer: full-avalanche mix for the event-stream hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

Scheduler::TimerId Scheduler::ScheduleAt(TimePoint t, Callback cb) {
  Event ev;
  ev.time = std::max(t, now_);
  ev.seq = next_seq_++;
  ev.id = ev.seq;  // seq doubles as the id; both are unique and monotone.
  ev.cb = std::move(cb);
  TimerId id = ev.id;
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  live_.insert(id);
  return id;
}

void Scheduler::Cancel(TimerId id) {
  if (live_.erase(id) == 0) {
    return;  // Already fired, already cancelled, or never scheduled.
  }
  // The heap entry becomes a tombstone, skipped when it reaches the top. If
  // tombstones outnumber live events in a large heap, compact in place.
  if (heap_.size() >= kCompactThreshold && live_.size() * 2 < heap_.size()) {
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const Event& ev) { return live_.count(ev.id) == 0; }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
}

void Scheduler::PruneCancelledTop() {
  while (!heap_.empty() && live_.count(heap_.front().id) == 0) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

bool Scheduler::RunOne() {
  PruneCancelledTop();
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  live_.erase(ev.id);
  now_ = ev.time;
  // Fold (time, seq) into the event-stream hash *before* running the
  // callback, so a callback that inspects the hash sees its own event.
  event_hash_ = Mix(event_hash_ ^ Mix(static_cast<uint64_t>(ev.time)) ^ ev.seq);
  ++events_fired_;
  ev.cb();
  return true;
}

void Scheduler::RunUntil(TimePoint t) {
  for (;;) {
    PruneCancelledTop();
    if (heap_.empty() || heap_.front().time > t) {
      break;
    }
    RunOne();
  }
  now_ = std::max(now_, t);
}

void Scheduler::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace nt
