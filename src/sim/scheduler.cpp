#include "src/sim/scheduler.h"

#include <cstdlib>

namespace nt {

namespace {
// Compact the heap once it holds this many events and the majority are
// tombstones; below this, tombstones are cheaper to skip on pop.
constexpr size_t kCompactThreshold = 64;

// SplitMix64 finalizer: full-avalanche mix for the event-stream hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

Scheduler::~Scheduler() {
  // Destroy the payload of every still-live slot (events never fired). Heap
  // entries whose key is stale are tombstones with nothing to free.
  // Indexed loop: a payload destructor may itself cancel (or even schedule)
  // events, so the vector can change under us.
  for (size_t i = kHeapPad; i < heap_.size(); ++i) {
    const HeapEntry e = heap_[i];
    if (IsLive(e)) {
      alignas(std::max_align_t) unsigned char tmp[Slot::kInlineBytes];
      Dispose(Detach(e.slot(), tmp));
    }
  }
}

void Scheduler::SpillPool::Grow() {
  constexpr size_t kBlocksPerSlab = 64;
  constexpr size_t kWordsPerBlock = kBlockBytes / sizeof(std::max_align_t);
  slabs_.push_back(std::make_unique<std::max_align_t[]>(kWordsPerBlock * kBlocksPerSlab));
  unsigned char* base = reinterpret_cast<unsigned char*>(slabs_.back().get());
  free_.reserve(free_.size() + kBlocksPerSlab);
  for (size_t i = 0; i < kBlocksPerSlab; ++i) {
    free_.push_back(base + i * kBlockBytes);
  }
}

uint32_t Scheduler::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  if (num_slots_ > kSlotIndexMask) {
    // > 16.7M simultaneously-pending events: the TimerId encoding is out of
    // index bits. No realistic scenario comes within orders of magnitude.
    std::abort();
  }
  if ((num_slots_ & (kSlotChunkSize - 1)) == 0) {
    slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
  }
  return num_slots_++;
}

void Scheduler::ReleaseSlot(uint32_t index) {
  // Zeroing the key invalidates every outstanding TimerId / heap entry for
  // this slot; the function pointers are left stale and overwritten on reuse.
  Slot& slot = SlotAt(index);
  slot.cur_key = 0;
  free_slots_.push_back(index);
}

Scheduler::Detached Scheduler::Detach(uint32_t index, void* tmp) {
  Slot& slot = SlotAt(index);
  Detached d;
  d.ops = slot.ops;
  d.storage = slot.storage;
  if (slot.storage == kStoredInline) {
    if (d.ops->relocate == nullptr) {
      // Trivially-copyable body: a fixed-size copy beats a call through the
      // relocate pointer, and the compiler turns it into wide moves.
      std::memcpy(tmp, slot.buf, Slot::kInlineBytes);
    } else {
      d.ops->relocate(tmp, slot.buf);
    }
    d.body = tmp;
  } else {
    std::memcpy(&d.body, slot.buf, sizeof(void*));
  }
  // Recycle the slot before the caller touches the payload: running or
  // destroying it may reenter ScheduleAt and claim this very slot.
  ReleaseSlot(index);
  --live_count_;
  return d;
}

void Scheduler::Dispose(const Detached& d) {
  if (d.ops->destroy != nullptr) {
    d.ops->destroy(d.body);
  }
  if (d.storage == kStoredPooled) {
    pool_.Free(d.body);
  } else if (d.storage == kStoredHeap) {
    d.ops->dealloc(d.body);
  }
}

void Scheduler::Cancel(TimerId id) {
  const uint32_t index = static_cast<uint32_t>(id & kSlotIndexMask);
  const Slot* slot = SlotIfValid(index);
  // kInvalidTimer (0) never matches: a free slot's key is 0, but id 0 is
  // rejected because live keys have seq >= 1 — and a free slot only matches
  // an id of exactly 0, which is... id 0. Guard it explicitly.
  if (id == kInvalidTimer || slot == nullptr || slot->cur_key != id) {
    return;  // Already fired, already cancelled, or never scheduled.
  }
  // Destroy the payload now — timers hold captured state (shared_ptrs,
  // digests) alive, and a cancelled retry must release it promptly. The heap
  // entry becomes a tombstone, detected by its stale generation.
  alignas(std::max_align_t) unsigned char tmp[Slot::kInlineBytes];
  Dispose(Detach(index, tmp));
  MaybeCompact();
}

void Scheduler::HeapPush(const HeapEntry& e) {
  size_t i = heap_.size();
  heap_.push_back(e);
  // Hole-sift: bubble the hole up, writing `e` once at its final position.
  while (i > kHeapPad) {
    const size_t parent = ((i - 4) >> 2) + kHeapPad;
    if (!Earlier(e, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::HeapSiftDown(size_t i) {
  const size_t end = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const size_t first = (i << 2) - 8;
    if (first >= end) {
      break;
    }
    size_t best = first;
    const size_t limit = first + 4 < end ? first + 4 : end;
    for (size_t c = first + 1; c < limit; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Earlier(heap_[best], e)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Scheduler::HeapPopTop() {
  const HeapEntry back = heap_.back();
  heap_.pop_back();
  const size_t end = heap_.size();
  if (end == kHeapPad) {
    return;
  }
  // Bottom-up pop: sift the root hole down along min-children without
  // comparing against `back` (it came from the bottom, so it almost always
  // belongs back at a leaf), then sift `back` up from that leaf — the upward
  // pass usually terminates immediately. ~25% fewer comparisons than the
  // classic replace-root-and-sift-down, and no mispredicted early exits.
  size_t hole = kHeapPad;
  for (;;) {
    const size_t first = (hole << 2) - 8;
    if (first >= end) {
      break;
    }
    size_t best = first;
    const size_t limit = first + 4 < end ? first + 4 : end;
    for (size_t c = first + 1; c < limit; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > kHeapPad) {
    const size_t parent = ((hole - 4) >> 2) + kHeapPad;
    if (!Earlier(back, heap_[parent])) {
      break;
    }
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = back;
}

void Scheduler::Heapify() {
  if (heap_.size() < kHeapPad + 2) {
    return;
  }
  // Sift down every internal node, last parent first.
  const size_t last_parent = ((heap_.size() - 1 - 4) >> 2) + kHeapPad;
  for (size_t i = last_parent + 1; i-- > kHeapPad;) {
    HeapSiftDown(i);
  }
}

void Scheduler::MaybeCompact() {
  // If tombstones outnumber live events in a large heap, compact in place.
  const size_t count = heap_.size() - kHeapPad;
  if (count < kCompactThreshold || live_count_ * 2 >= count) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin() + kHeapPad, heap_.end(),
                             [this](const HeapEntry& e) { return !IsLive(e); }),
              heap_.end());
  Heapify();
}

void Scheduler::PruneCancelledTop() {
  while (!HeapEmpty() && !IsLive(HeapTop())) {
    HeapPopTop();
  }
}

bool Scheduler::RunOne() {
  // Pop-and-check rather than check-then-pop: one slot lookup per entry,
  // with tombstones discarded on the way.
  HeapEntry entry;
  for (;;) {
    if (HeapEmpty()) {
      return false;
    }
    entry = HeapTop();
    HeapPopTop();
    // Heap entries only ever name allocated slots, so SlotAt is safe.
    if (SlotAt(entry.slot()).cur_key == entry.key) {
      break;
    }
  }
  now_ = entry.time;
  // Fold (time, seq) into the event-stream hash *before* running the
  // callback, so a callback that inspects the hash sees its own event.
  event_hash_ = Mix(event_hash_ ^ Mix(static_cast<uint64_t>(entry.time)) ^ entry.seq());
  ++events_fired_;
  alignas(std::max_align_t) unsigned char tmp[Slot::kInlineBytes];
  Detached d = Detach(entry.slot(), tmp);
  d.ops->invoke(d.body);
  Dispose(d);
  return true;
}

void Scheduler::RunUntil(TimePoint t) {
  for (;;) {
    PruneCancelledTop();
    if (HeapEmpty() || HeapTop().time > t) {
      break;
    }
    RunOne();
  }
  now_ = now_ > t ? now_ : t;
}

void Scheduler::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace nt
