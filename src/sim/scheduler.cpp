#include "src/sim/scheduler.h"

#include <algorithm>

namespace nt {

Scheduler::TimerId Scheduler::ScheduleAt(TimePoint t, Callback cb) {
  Event ev;
  ev.time = std::max(t, now_);
  ev.seq = next_seq_++;
  ev.id = ev.seq;  // seq doubles as the id; both are unique and monotone.
  ev.cb = std::move(cb);
  TimerId id = ev.id;
  queue_.push(std::move(ev));
  return id;
}

void Scheduler::Cancel(TimerId id) {
  if (id != kInvalidTimer && id < next_seq_) {
    cancelled_.insert(id);
  }
}

bool Scheduler::RunOne() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the callback is moved out via const_cast,
    // which is safe because the element is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto cancelled = cancelled_.find(ev.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    now_ = ev.time;
    ev.cb();
    return true;
  }
  return false;
}

void Scheduler::RunUntil(TimePoint t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    RunOne();
  }
  now_ = std::max(now_, t);
}

void Scheduler::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace nt
