// Discrete-event scheduler: the heartbeat of the whole reproduction.
//
// All protocol code runs as callbacks on a single virtual clock. Events fire
// in (time, insertion-order) order, so runs are fully deterministic for a
// given seed — the property that lets every benchmark scenario and failure
// schedule replay exactly.
//
// The hot path is allocation-free: callbacks are stored in a small-buffer-
// optimized slot (64 inline bytes cover every capture in the tree; larger
// captures spill to a pooled slab, and only pathological ones touch the
// heap). Slots are recycled through a key-tagged pool, so Cancel() and
// liveness checks are O(1) array lookups with no hashing, and the 4-ary
// heap itself holds only 16-byte POD entries — sift operations move plain
// integers, never callbacks.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/time.h"

namespace nt {

class Scheduler {
 public:
  using TimerId = uint64_t;

  static constexpr TimerId kInvalidTimer = 0;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  TimePoint now() const { return now_; }

  // Schedules `cb` at absolute time `t` (clamped to now). Returns an id
  // usable with Cancel().
  template <typename F>
  TimerId ScheduleAt(TimePoint t, F&& cb);

  // Schedules `cb` after `delay` from now.
  template <typename F>
  TimerId ScheduleAfter(TimeDelta delay, F&& cb) {
    return ScheduleAt(now_ + delay, std::forward<F>(cb));
  }

  // Cancels a pending event. A no-op for already-fired, already-cancelled,
  // or invalid ids — the generation tag makes stale handles harmless.
  void Cancel(TimerId id);

  // Pops and runs the next event, advancing the clock to it. Returns false if
  // the queue is empty.
  bool RunOne();

  // Runs all events with time <= `t`, then advances the clock to `t`.
  void RunUntil(TimePoint t);

  // Runs until no events remain.
  void RunUntilIdle();

  // Exact number of live (scheduled, not yet fired, not cancelled) events.
  size_t pending_events() const { return live_count_; }

  // --- determinism self-check ------------------------------------------------
  // Running hash over every fired event's (time, sequence) pair, folded in
  // firing order. Two runs of the same seeded experiment must produce the
  // same hash; any divergence means some component introduced iteration-order
  // or wall-clock nondeterminism. The DST harness (src/check) compares this
  // across duplicate runs and fails the experiment on mismatch.
  uint64_t event_hash() const { return event_hash_; }
  // Total events fired so far (cheap cross-check alongside the hash).
  uint64_t events_fired() const { return events_fired_; }

 private:
  // Where a slot's callback body lives.
  enum : uint8_t { kStoredInline = 0, kStoredPooled = 1, kStoredHeap = 2 };

  // Events are keyed by a single 64-bit word: (seq << 24) | slot index. The
  // sequence number is unique per scheduled event, so the key doubles as the
  // public TimerId, as the heap tie-breaker (higher bits dominate, so key
  // order on equal times IS seq order), and as the liveness token — a slot
  // remembers the key of its current occupant, so "is this heap entry / this
  // TimerId still live?" is one 64-bit compare. 24 index bits cap concurrent
  // pending events at ~16.7M; 40 seq bits cap a scheduler's lifetime at
  // ~1.1e12 events — both orders of magnitude past the largest experiment.
  static constexpr uint32_t kSlotIndexBits = 24;
  static constexpr uint64_t kSlotIndexMask = (uint64_t{1} << kSlotIndexBits) - 1;

  // Type-erased operations for one callback type. One static instance per
  // instantiation lives in .rodata and is shared by every slot holding that
  // type — slots carry a single pointer to it, keeping slot metadata plus
  // the first 32 callback bytes on one cache line.
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs the callback into dst and destroys the src copy; only
    // needed for inline storage (spilled bodies move by pointer). Null for
    // trivially-copyable inline bodies (plain memcpy relocation).
    void (*relocate)(void*, void*);
    void (*destroy)(void*);  // Null for trivially-destructible bodies.
    // Releases a kStoredHeap body's memory (nullptr otherwise).
    void (*dealloc)(void*);
  };

  // One pooled callback slot. Slots live in chunked arrays with stable
  // addresses (never relocated while a callback is stored), and are recycled
  // through a free list. `cur_key` is 0 while the slot is free — live keys
  // always carry seq >= 1, so a stale TimerId (fired or cancelled event) can
  // never alias a later occupant of the same slot.
  struct Slot {
    static constexpr size_t kInlineBytes = 64;

    uint64_t cur_key = 0;
    const Ops* ops = nullptr;
    uint8_t storage = kStoredInline;
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };

  // Fixed-size slab allocator for callbacks too big for the inline buffer.
  // Blocks are never returned to the OS mid-run; the free list keeps reuse
  // O(1) and allocation-free at steady state.
  class SpillPool {
   public:
    static constexpr size_t kBlockBytes = 256;

    void* Alloc() {
      if (free_.empty()) {
        Grow();
      }
      void* p = free_.back();
      free_.pop_back();
      return p;
    }
    void Free(void* p) { free_.push_back(p); }

   private:
    void Grow();

    std::vector<std::unique_ptr<std::max_align_t[]>> slabs_;
    std::vector<void*> free_;
  };

  // Min-heap entry: 16 bytes of POD (four children share one cache line),
  // ordered earliest time first with ties broken by insertion order so
  // causally-enqueued work runs in FIFO order.
  struct HeapEntry {
    TimePoint time;
    uint64_t key;  // (seq << kSlotIndexBits) | slot index.

    uint64_t seq() const { return key >> kSlotIndexBits; }
    uint32_t slot() const { return static_cast<uint32_t>(key & kSlotIndexMask); }
  };

  // Strict total order on events: (time, seq), and seq is unique, so the
  // minimum is unique — the internal heap arity/layout can never change
  // which event pops next. Comparing keys compares seqs: seq occupies the
  // high bits and no two live keys share one.
  //
  // The lexicographic (time, key) compare is expressed as one 128-bit
  // unsigned less-than (time is never negative): cmp/sbb with no branches,
  // which matters in the min-of-4 sift tournament where short-circuit
  // branches on near-random data would mispredict every level.
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    using U128 = unsigned __int128;
    const U128 ka = (U128{static_cast<uint64_t>(a.time)} << 64) | a.key;
    const U128 kb = (U128{static_cast<uint64_t>(b.time)} << 64) | b.key;
    return ka < kb;
  }

  // 64-byte-aligned storage for the heap vector. Combined with the 3-entry
  // front pad (kHeapPad), every 4-child group of the 4-ary heap — 4 x 16
  // bytes — occupies exactly one cache line, halving the lines touched per
  // sift when the heap has been evicted to L2 by the rest of the hot state.
  template <typename T>
  struct CacheAlignedAlloc {
    using value_type = T;
    CacheAlignedAlloc() = default;
    template <typename U>
    CacheAlignedAlloc(const CacheAlignedAlloc<U>&) {}  // NOLINT(runtime/explicit)
    T* allocate(size_t n) {
      return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{64}));
    }
    void deallocate(T* p, size_t) { ::operator delete(p, std::align_val_t{64}); }
    bool operator==(const CacheAlignedAlloc&) const { return true; }
    bool operator!=(const CacheAlignedAlloc&) const { return false; }
  };

  // A callback extracted from its slot, ready to run/destroy after the slot
  // has been recycled (the callback may reenter ScheduleAt/Cancel).
  struct Detached {
    void* body;
    const Ops* ops;
    uint8_t storage;
  };

  template <typename Fn>
  struct FnOps {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void HeapDealloc(void* p) {
      if constexpr (alignof(Fn) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
        ::operator delete(p, std::align_val_t(alignof(Fn)));
      } else {
        ::operator delete(p);
      }
    }

    // `dealloc` is only ever called for kStoredHeap bodies, so kFull can
    // carry it unconditionally.
    static constexpr Ops kFull = {&Invoke, &Relocate, &Destroy, &HeapDealloc};
    // Trivially-copyable, trivially-destructible inline bodies (pointers,
    // ids, digests): relocation is a fixed-size memcpy, destruction a no-op.
    static constexpr Ops kTrivial = {&Invoke, nullptr, nullptr, nullptr};
  };

  static constexpr uint32_t kSlotChunkShift = 8;  // 256 slots per chunk.
  static constexpr uint32_t kSlotChunkSize = 1u << kSlotChunkShift;

  Slot& SlotAt(uint32_t index) {
    return slot_chunks_[index >> kSlotChunkShift][index & (kSlotChunkSize - 1)];
  }
  const Slot* SlotIfValid(uint32_t index) const {
    if (index >= num_slots_) {
      return nullptr;
    }
    return &slot_chunks_[index >> kSlotChunkShift][index & (kSlotChunkSize - 1)];
  }

  uint32_t AllocSlot();
  // Clears the occupancy key and returns the slot to the free list.
  void ReleaseSlot(uint32_t index);
  // Extracts the callback from a live slot (relocating inline bodies into
  // `tmp`) and releases the slot. The caller runs/destroys the result.
  Detached Detach(uint32_t index, void* tmp);
  void Dispose(const Detached& d);

  // True iff the heap entry still refers to a live event (not cancelled or
  // fired): its key matches the slot's current occupancy key.
  bool IsLive(const HeapEntry& e) const {
    const Slot* s = SlotIfValid(e.slot());
    return s != nullptr && s->cur_key == e.key;
  }

  // --- 4-ary min-heap over Earlier() ---------------------------------------
  // Hand-rolled with hole-sifting: half the depth of a binary heap, each
  // 4-child group on exactly one cache line (64-byte-aligned storage plus
  // the 3-entry front pad), and entries are moved (not swapped) exactly once
  // per level. Layout is an implementation detail — pop order is fixed by
  // the total order above.
  //
  // The heap occupies heap_[kHeapPad..): the root is heap_[3], the children
  // of array index i are array indices 4i-8 .. 4i-5 (a multiple-of-4 start,
  // hence cache-aligned), and the parent of j is ((j - 4) >> 2) + 3.
  static constexpr size_t kHeapPad = 3;

  bool HeapEmpty() const { return heap_.size() == kHeapPad; }
  const HeapEntry& HeapTop() const { return heap_[kHeapPad]; }
  void HeapPush(const HeapEntry& e);
  // Removes the minimum, restoring the heap property.
  void HeapPopTop();
  void HeapSiftDown(size_t i);
  // Restores the heap property over an arbitrarily-ordered heap_.
  void Heapify();

  // Drops cancelled events sitting at the top of the heap so heap_[0]
  // (when non-empty) is always the next live event.
  void PruneCancelledTop();
  // Compacts tombstones out of the heap when they dominate it.
  void MaybeCompact();

  TimePoint now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t event_hash_ = 0;
  uint64_t events_fired_ = 0;
  size_t live_count_ = 0;
  // 4-ary min-heap over Earlier(), kept as an explicit vector so
  // cancellation can compact it in place when tombstones pile up. The first
  // kHeapPad entries are alignment padding, never read.
  using HeapVec = std::vector<HeapEntry, CacheAlignedAlloc<HeapEntry>>;
  HeapVec heap_ = HeapVec(kHeapPad);
  // Chunked slot arena: stable addresses (a chunk is never moved once
  // allocated), indexed as chunk[i >> 8][i & 255].
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  uint32_t num_slots_ = 0;
  std::vector<uint32_t> free_slots_;
  SpillPool pool_;
};

template <typename F>
Scheduler::TimerId Scheduler::ScheduleAt(TimePoint t, F&& cb) {
  using Fn = std::decay_t<F>;
  static_assert(std::is_invocable_v<Fn&>, "callback must be invocable with no arguments");

  const uint32_t index = AllocSlot();
  Slot& slot = SlotAt(index);
  void* where;
  if constexpr (sizeof(Fn) <= Slot::kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
    slot.storage = kStoredInline;
    where = slot.buf;
  } else if constexpr (sizeof(Fn) <= SpillPool::kBlockBytes &&
                       alignof(Fn) <= alignof(std::max_align_t)) {
    slot.storage = kStoredPooled;
    where = pool_.Alloc();
    std::memcpy(slot.buf, &where, sizeof(void*));
  } else {
    slot.storage = kStoredHeap;
    if constexpr (alignof(Fn) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      where = ::operator new(sizeof(Fn), std::align_val_t(alignof(Fn)));
    } else {
      where = ::operator new(sizeof(Fn));
    }
    std::memcpy(slot.buf, &where, sizeof(void*));
  }
  ::new (where) Fn(std::forward<F>(cb));
  if constexpr (std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn> &&
                sizeof(Fn) <= Slot::kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
    slot.ops = &FnOps<Fn>::kTrivial;
  } else {
    slot.ops = &FnOps<Fn>::kFull;
  }

  HeapEntry entry;
  entry.time = t > now_ ? t : now_;
  entry.key = (next_seq_++ << kSlotIndexBits) | index;
  slot.cur_key = entry.key;
  HeapPush(entry);
  ++live_count_;
  return entry.key;
}

}  // namespace nt

#endif  // SRC_SIM_SCHEDULER_H_
