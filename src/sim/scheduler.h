// Discrete-event scheduler: the heartbeat of the whole reproduction.
//
// All protocol code runs as callbacks on a single virtual clock. Events fire
// in (time, insertion-order) order, so runs are fully deterministic for a
// given seed — the property that lets every benchmark scenario and failure
// schedule replay exactly.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace nt {

class Scheduler {
 public:
  using Callback = std::function<void()>;
  using TimerId = uint64_t;

  static constexpr TimerId kInvalidTimer = 0;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimePoint now() const { return now_; }

  // Schedules `cb` at absolute time `t` (clamped to now). Returns an id
  // usable with Cancel().
  TimerId ScheduleAt(TimePoint t, Callback cb);

  // Schedules `cb` after `delay` from now.
  TimerId ScheduleAfter(TimeDelta delay, Callback cb) { return ScheduleAt(now_ + delay, std::move(cb)); }

  // Cancels a pending event. A no-op for already-fired, already-cancelled,
  // or invalid ids — no bookkeeping is retained for them.
  void Cancel(TimerId id);

  // Pops and runs the next event, advancing the clock to it. Returns false if
  // the queue is empty.
  bool RunOne();

  // Runs all events with time <= `t`, then advances the clock to `t`.
  void RunUntil(TimePoint t);

  // Runs until no events remain.
  void RunUntilIdle();

  // Exact number of live (scheduled, not yet fired, not cancelled) events.
  size_t pending_events() const { return live_.size(); }

  // --- determinism self-check ------------------------------------------------
  // Running hash over every fired event's (time, sequence) pair, folded in
  // firing order. Two runs of the same seeded experiment must produce the
  // same hash; any divergence means some component introduced iteration-order
  // or wall-clock nondeterminism. The DST harness (src/check) compares this
  // across duplicate runs and fails the experiment on mismatch.
  uint64_t event_hash() const { return event_hash_; }
  // Total events fired so far (cheap cross-check alongside the hash).
  uint64_t events_fired() const { return events_fired_; }

 private:
  struct Event {
    TimePoint time;
    uint64_t seq;
    TimerId id;
    // Ordered as a min-heap: earliest time first, ties broken by insertion
    // order so causally-enqueued work runs in FIFO order.
    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
    Callback cb;
  };

  // Drops cancelled events sitting at the top of the heap so heap_.front()
  // (when non-empty) is always the next live event.
  void PruneCancelledTop();

  TimePoint now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t event_hash_ = 0;
  uint64_t events_fired_ = 0;
  // Min-heap over Event::operator> (std::push_heap/std::pop_heap with
  // std::greater), kept as an explicit vector so cancellation can compact it
  // in place when tombstones pile up.
  std::vector<Event> heap_;
  // Ids of queued, not-yet-fired, not-cancelled events. Cancel() erases from
  // here (heap entries whose id is absent are tombstones, skipped on pop), so
  // cancelling never accumulates state for ids that already fired.
  std::unordered_set<TimerId> live_;
};

}  // namespace nt

#endif  // SRC_SIM_SCHEDULER_H_
