// Bullshark (arXiv:2201.05677, partially-synchronous variant): a 2-round
// commit rule interpreting the same local Narwhal DAG as Tusk, with zero
// extra messages.
//
// The DAG is divided into waves of 2 rounds: wave w owns rounds (2w-1, 2w).
// The wave's anchor is a fixed, deterministically scheduled author's
// certificate at round 2w-1 (round-robin by default — no common coin, which
// is what makes the rule partially synchronous rather than asynchronous).
// The anchor commits as soon as f+1 certified round-2w blocks reference it
// as a parent: by quorum intersection, every certificate at round >= 2w+1
// then has a DAG path to the anchor, so validators that skip the wave
// locally will order the anchor later through the backward anchor-chain
// walk (identical to Tusk's Lemma 1 argument, one round earlier).
//
// Compared to Tusk, the decision round for wave w is 2w (the support round)
// instead of 2w+1 (the coin-reveal round), and anchors recur every 2 rounds
// instead of every 3 — strictly lower commit latency in the fault-free case,
// at the price of losing liveness under full asynchrony.
//
// Shoal-style leader reputation (arXiv:2306.03058) is available behind
// `BullsharkConfig::reputation`: authors whose most recent settled anchor
// was skipped are passed over in the round-robin schedule for a window of
// waves. The schedule is a pure fold over the settled wave-outcome sequence
// (updated only when the committed-wave cursor advances, with the pre-event
// state used for all author lookups inside one commit event), so a replay
// over the same outcome sequence — e.g. the ReplayBullshark oracle — derives
// the identical schedule. Caveat: under extreme fault mixes, validators can
// settle outcomes at different event granularities and transiently disagree
// on far-future anchor authors; the flag therefore defaults to off and the
// DST corpus runs with it off.
#ifndef SRC_BULLSHARK_BULLSHARK_H_
#define SRC_BULLSHARK_BULLSHARK_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/narwhal/primary.h"

namespace nt {

struct BullsharkConfig {
  // Shoal-style anchor-author reputation (see file comment). Default off.
  bool reputation = false;
  // A skipped anchor disfavors its author for this many settled waves.
  uint64_t reputation_window = 8;
};

// One settled wave outcome (for WAL snapshot/restore of the schedule).
struct AnchorOutcome {
  ValidatorId author = 0;
  uint64_t wave = 0;
  bool committed = false;
};

// Deterministic anchor-author schedule: round-robin base, optionally
// reputation-adjusted. Pure state machine over settled wave outcomes —
// shared verbatim between the live committer and the ReplayBullshark oracle
// so both always derive the same author for the same wave.
class AnchorSchedule {
 public:
  AnchorSchedule(size_t committee_size, const BullsharkConfig& config)
      : n_(committee_size), config_(config) {}

  // Author of wave w's anchor under the current settled-outcome state.
  ValidatorId AuthorOf(uint64_t wave) const;

  // Settles the outcome of `wave` (true = anchor ordered, false = skipped).
  // Must be called in strictly increasing wave order, exactly once per wave,
  // and only after every author lookup belonging to the commit event that
  // settled it (pre-event state rule; see file comment).
  void RecordOutcome(uint64_t wave, ValidatorId author, bool committed);

  // Persistence: the schedule state is a bounded set of per-author latest
  // outcomes plus the settled-wave cursor.
  uint64_t settled_through() const { return settled_through_; }
  std::vector<AnchorOutcome> Snapshot() const;
  void Restore(uint64_t settled_through, const std::vector<AnchorOutcome>& outcomes);

 private:
  bool Disfavored(ValidatorId v) const;

  size_t n_;
  BullsharkConfig config_;
  uint64_t settled_through_ = 0;
  // Most recent settled outcome per author: wave and whether it committed.
  std::map<ValidatorId, std::pair<uint64_t, bool>> last_outcome_;
};

class Bullshark {
 public:
  struct Committed {
    Digest digest{};
    std::shared_ptr<const BlockHeader> header;
    // The wave whose anchor chain delivered this header, the anchor round
    // (2w-1), and the round whose support votes decided the commit (2w).
    uint64_t wave = 0;
    Round anchor_round = 0;
    Round decision_round = 0;
  };

  Bullshark(Primary* primary, const Committee& committee, Round gc_depth,
            BullsharkConfig config = {});

  // Registers a delivery callback: fired once per committed header, in total
  // order. Multiple listeners may register (metrics, applications, tests).
  void add_on_commit(std::function<void(const Committed&)> hook) {
    on_commit_hooks_.push_back(std::move(hook));
  }

  // Attaches the durable consensus store (non-owning; null = ephemeral).
  // Commit records are write-ahead persisted so a recovered validator never
  // re-delivers a header it committed pre-crash.
  void set_store(Store* store) { store_ = store; }

  // Restores the committed set, wave cursor, and settled anchor outcomes
  // from the store. Call after the primary's own Recover() (GC filtering
  // reads its horizon) and before hooks fire; recovery itself delivers
  // nothing. Re-notifies the primary of committed headers still in the DAG
  // so batch re-injection bookkeeping survives the crash too.
  void Recover();

  // Re-evaluates the commit rule over the recovered DAG (post-rejoin
  // counterpart of the certificate hooks, which only fire on new arrivals).
  void Resume() { TryCommit(); }

  // Wire these to the primary's hooks (done by Bullshark's constructor).
  void OnCertificate(const Certificate& cert);
  void OnHeaderStored(const Digest& digest);

  // Attaches the cluster's tracer (counters only; per-header commit stamps
  // come from Primary::NotifyCommitted).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  uint64_t last_committed_wave() const { return last_committed_wave_; }
  uint64_t committed_headers() const { return committed_count_; }
  uint64_t skipped_anchors() const { return skipped_anchors_; }
  const BullsharkConfig& config() const { return config_; }

  // Rounds of wave w (w >= 1): anchor round and support (decision) round.
  static Round WaveAnchorRound(uint64_t wave) { return 2 * wave - 1; }
  static Round WaveSupportRound(uint64_t wave) { return 2 * wave; }

 private:
  const Certificate* AnchorCert(uint64_t wave) const;
  bool CommitRuleSatisfied(uint64_t wave, const Certificate& anchor) const;
  // Commits the anchor chain ending at wave `wave`. Returns false if the
  // commit had to be deferred on missing headers (sync requested).
  bool CommitChain(uint64_t wave, const Certificate& anchor);
  void TryCommit();
  void PruneCommitted(Round gc_round);
  void PersistCommit(const Digest& digest, Round round);
  void PersistMeta();
  // Settles outcomes for waves (from, through] after a commit event, feeding
  // the reputation schedule and the WAL outcome log.
  void SettleOutcomes(uint64_t from, uint64_t through);

  Primary* primary_;
  const Committee& committee_;
  Round gc_depth_;
  BullsharkConfig config_;
  AnchorSchedule schedule_;
  Tracer* tracer_ = nullptr;

  Store* store_ = nullptr;
  uint64_t last_committed_wave_ = 0;
  std::set<Digest> committed_;
  std::map<Round, std::vector<Digest>> committed_by_round_;
  uint64_t committed_count_ = 0;
  uint64_t skipped_anchors_ = 0;
  uint64_t last_skip_counted_ = 0;

  std::vector<std::function<void(const Committed&)>> on_commit_hooks_;
};

}  // namespace nt

#endif  // SRC_BULLSHARK_BULLSHARK_H_
