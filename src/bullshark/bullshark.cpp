#include "src/bullshark/bullshark.h"

#include <algorithm>
#include <string_view>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/common/seeded_bugs.h"

namespace nt {

// ------------------------------------------------------------ anchor schedule

ValidatorId AnchorSchedule::AuthorOf(uint64_t wave) const {
  ValidatorId base = static_cast<ValidatorId>((wave - 1) % n_);
  if (!config_.reputation) {
    return base;
  }
  for (size_t off = 0; off < n_; ++off) {
    ValidatorId cand = static_cast<ValidatorId>((base + off) % n_);
    if (!Disfavored(cand)) {
      return cand;
    }
  }
  return base;  // Every author disfavored: degrade to plain round-robin.
}

bool AnchorSchedule::Disfavored(ValidatorId v) const {
  auto it = last_outcome_.find(v);
  if (it == last_outcome_.end() || it->second.second) {
    return false;  // Never scheduled, or most recent anchor committed.
  }
  // Skipped anchors disfavor their author for `reputation_window` settled
  // waves, after which the author is forgiven and rescheduled.
  return it->second.first + config_.reputation_window > settled_through_;
}

void AnchorSchedule::RecordOutcome(uint64_t wave, ValidatorId author, bool committed) {
  last_outcome_[author] = {wave, committed};
  settled_through_ = wave;
}

std::vector<AnchorOutcome> AnchorSchedule::Snapshot() const {
  std::vector<AnchorOutcome> out;
  out.reserve(last_outcome_.size());
  for (const auto& [author, entry] : last_outcome_) {
    AnchorOutcome o;
    o.author = author;
    o.wave = entry.first;
    o.committed = entry.second;
    out.push_back(o);
  }
  return out;
}

void AnchorSchedule::Restore(uint64_t settled_through,
                             const std::vector<AnchorOutcome>& outcomes) {
  settled_through_ = settled_through;
  last_outcome_.clear();
  for (const AnchorOutcome& o : outcomes) {
    last_outcome_[o.author] = {o.wave, o.committed};
  }
}

// ------------------------------------------------------------------ bullshark

Bullshark::Bullshark(Primary* primary, const Committee& committee, Round gc_depth,
                     BullsharkConfig config)
    : primary_(primary),
      committee_(committee),
      gc_depth_(gc_depth),
      config_(config),
      schedule_(committee.size(), config) {
  primary_->add_on_certificate([this](const Certificate& cert) { OnCertificate(cert); });
  primary_->add_on_header_stored([this](const Digest& digest) { OnHeaderStored(digest); });
}

void Bullshark::OnCertificate(const Certificate&) { TryCommit(); }

void Bullshark::OnHeaderStored(const Digest&) { TryCommit(); }

// ---------------------------------------------------------------- persistence

namespace {
// Consensus-store records: 'B' commit entries (one per delivered header),
// 'S' meta (wave cursor + settled anchor-schedule outcomes). The store is
// shared with other consensus interpreters (Tusk's 'T'/'U', HotStuff's
// ledger), so tags stay globally unique.
Digest BullsharkCommitKey(const Digest& digest) {
  Writer w;
  w.PutU8('B');
  w.PutRaw(digest);
  return Sha256::Hash(w.bytes().data(), w.size());
}
Digest BullsharkMetaKey() { return Sha256::Hash(std::string_view("bullshark/meta")); }
}  // namespace

void Bullshark::PersistCommit(const Digest& digest, Round round) {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('B');
  w.PutU64(round);
  w.PutRaw(digest);
  store_->Put(BullsharkCommitKey(digest), w.Take());
}

void Bullshark::PersistMeta() {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('S');
  w.PutU64(last_committed_wave_);
  // Schedule state rides in the meta record: it is bounded (one latest
  // outcome per author) and must survive restarts even with reputation off,
  // so flipping the flag on a recovered store stays well-defined.
  w.PutU64(schedule_.settled_through());
  std::vector<AnchorOutcome> outcomes = schedule_.Snapshot();
  w.PutU32(static_cast<uint32_t>(outcomes.size()));
  for (const AnchorOutcome& o : outcomes) {
    w.PutU32(o.author);
    w.PutU64(o.wave);
    w.PutBool(o.committed);
  }
  store_->Put(BullsharkMetaKey(), w.Take());
  store_->Sync();
}

void Bullshark::Recover() {
  if (store_ == nullptr) {
    return;
  }
  const Round gc_round = primary_->dag().gc_round();
  store_->ForEach([&](const Digest&, const Bytes& value) {
    if (value.empty()) {
      return;
    }
    Reader r(value.data() + 1, value.size() - 1);
    switch (value[0]) {
      case 'B': {
        Round round = static_cast<Round>(r.GetU64());
        Digest digest = r.GetArray<32>();
        if (!r.ok() || round < gc_round) {
          break;
        }
        if (committed_.insert(digest).second) {
          committed_by_round_[round].push_back(digest);
          ++committed_count_;
        }
        break;
      }
      case 'S': {
        last_committed_wave_ = r.GetU64();
        uint64_t settled_through = r.GetU64();
        uint32_t count = r.GetU32();
        std::vector<AnchorOutcome> outcomes;
        for (uint32_t i = 0; r.ok() && i < count; ++i) {
          AnchorOutcome o;
          o.author = r.GetU32();
          o.wave = r.GetU64();
          o.committed = r.GetBool();
          outcomes.push_back(o);
        }
        if (r.ok()) {
          schedule_.Restore(settled_through, outcomes);
        }
        break;
      }
      default:
        break;
    }
  });
  last_skip_counted_ = last_committed_wave_;
  // Refresh the primary's commit bookkeeping (committed batches, own-header
  // re-injection) for committed headers the recovered DAG still holds; the
  // crash-restart must not cause committed payload to be re-injected.
  for (const Digest& digest : committed_) {
    auto header = primary_->dag().GetHeader(digest);
    if (header != nullptr) {
      primary_->NotifyCommitted(*header);
    }
  }
}

// ---------------------------------------------------------------- commit rule

const Certificate* Bullshark::AnchorCert(uint64_t wave) const {
  return primary_->dag().GetCert(WaveAnchorRound(wave), schedule_.AuthorOf(wave));
}

bool Bullshark::CommitRuleSatisfied(uint64_t wave, const Certificate& anchor) const {
  const Dag& dag = primary_->dag();
  uint32_t votes = 0;
  for (const auto& [author, cert] : dag.CertsAt(WaveSupportRound(wave))) {
    auto header = dag.GetHeader(cert.header_digest);
    if (header == nullptr) {
      continue;  // Unknown edges can only undercount; sync will re-trigger.
    }
    for (const Certificate& parent : header->parents) {
      if (parent.header_digest == anchor.header_digest) {
        ++votes;
        break;
      }
    }
  }
  if (seeded_bugs::skip_bullshark_support) {
    // Seeded mutation: commit on f support votes instead of the paper's f+1.
    // One vote short of the validity threshold voids quorum intersection —
    // the f supporters may all be invisible to the 2f+1 parents of a later
    // round, so other validators neither direct-commit the anchor nor reach
    // it by path, and committed sequences fork (caught by the DST harness's
    // prefix-consistency / oracle-agreement invariants).
    return votes >= committee_.f();
  }
  return votes >= committee_.validity_threshold();
}

void Bullshark::TryCommit() {
  const Dag& dag = primary_->dag();
  // Highest wave whose support round could exist in the DAG.
  Round top = dag.HighestRound();
  if (top < 2) {
    return;
  }
  uint64_t max_wave = top / 2;
  for (uint64_t wave = last_committed_wave_ + 1; wave <= max_wave; ++wave) {
    const Certificate* anchor = AnchorCert(wave);
    if (anchor == nullptr || committed_.count(anchor->header_digest) != 0) {
      continue;  // No anchor block in our view: wave yields nothing directly.
    }
    if (!CommitRuleSatisfied(wave, *anchor)) {
      if (wave > last_skip_counted_) {  // Count each wave's skip once.
        ++skipped_anchors_;
        last_skip_counted_ = wave;
        NT_TRACE(tracer_, IncrCounter("bullshark/skipped_anchors"));
      }
      // Unlike Tusk there is no third-round completeness gate: f+1 support
      // votes guarantee every later-round certificate reaches the anchor by
      // path, so a later wave orders this one if anyone committed it.
      continue;
    }
    if (!CommitChain(wave, *anchor)) {
      break;  // Deferred on missing headers; retried via OnHeaderStored.
    }
  }
}

bool Bullshark::CommitChain(uint64_t wave, const Certificate& anchor) {
  const Dag& dag = primary_->dag();

  // Ensure the anchor's entire causal history is locally complete before
  // deciding anything: HasPath below must not mistake a missing header for a
  // missing path, or we could skip an anchor another validator committed
  // (the paper's "conservative synchronization").
  {
    Dag::History full = dag.CollectCausalHistory(anchor.header_digest, committed_);
    if (!full.missing.empty()) {
      for (const Digest& missing : full.missing) {
        primary_->SyncHeader(missing);
      }
      return false;
    }
  }

  // Walk back through skipped waves: order any earlier anchor that the
  // current candidate can reach (it may have been committed by others). All
  // author lookups in this event use the pre-event schedule state; outcomes
  // are settled only after delivery succeeds (see AnchorSchedule contract).
  std::vector<const Certificate*> chain{&anchor};
  const Certificate* candidate = &anchor;
  for (uint64_t i = wave - 1; i > last_committed_wave_ && i > 0; --i) {
    const Certificate* ai = AnchorCert(i);
    if (ai == nullptr || committed_.count(ai->header_digest) != 0) {
      continue;
    }
    if (dag.HasPath(candidate->header_digest, ai->header_digest)) {
      chain.push_back(ai);
      candidate = ai;
    }
  }
  std::reverse(chain.begin(), chain.end());

  // First pass: ensure every history is locally complete; request any gaps
  // and defer (the paper's "conservative synchronization").
  std::set<Digest> virtual_committed = committed_;
  std::vector<std::pair<const Certificate*, Dag::History>> histories;
  for (const Certificate* lead : chain) {
    Dag::History history = dag.CollectCausalHistory(lead->header_digest, virtual_committed);
    if (!history.missing.empty()) {
      for (const Digest& missing : history.missing) {
        primary_->SyncHeader(missing);
      }
      return false;
    }
    for (const Digest& d : history.ordered) {
      virtual_committed.insert(d);
    }
    histories.emplace_back(lead, std::move(history));
  }

  // Second pass: deliver.
  for (auto& [lead, history] : histories) {
    for (const Digest& digest : history.ordered) {
      auto header = dag.GetHeader(digest);
      // Write-ahead: the commit record is durable before any hook (metrics,
      // executor, checker) observes the delivery.
      PersistCommit(digest, header->round);
      committed_.insert(digest);
      committed_by_round_[header->round].push_back(digest);
      ++committed_count_;
      primary_->NotifyCommitted(*header);
      if (!on_commit_hooks_.empty()) {
        Committed out;
        out.digest = digest;
        out.header = header;
        out.wave = wave;
        out.anchor_round = lead->round;
        out.decision_round = WaveSupportRound(wave);
        for (const auto& hook : on_commit_hooks_) {
          hook(out);
        }
      }
    }
  }
  SettleOutcomes(last_committed_wave_, wave);
  last_committed_wave_ = wave;
  PersistMeta();
  NT_TRACE(tracer_, IncrCounter("bullshark/committed_waves"));

  // Advance the garbage-collection horizon relative to the last committed
  // anchor round (paper §3.3).
  Round anchor_round = WaveAnchorRound(wave);
  if (anchor_round > gc_depth_) {
    Round gc_round = anchor_round - gc_depth_;
    primary_->SetGcRound(gc_round);
    PruneCommitted(gc_round);
  }
  return true;
}

void Bullshark::SettleOutcomes(uint64_t from, uint64_t through) {
  const Dag& dag = primary_->dag();
  // Resolve every author with the pre-event schedule state first: the fold
  // must see the same authors the commit walk saw, and RecordOutcome below
  // mutates the state as it advances.
  std::vector<ValidatorId> authors;
  authors.reserve(static_cast<size_t>(through - from));
  for (uint64_t i = from + 1; i <= through; ++i) {
    authors.push_back(schedule_.AuthorOf(i));
  }
  for (uint64_t i = from + 1; i <= through; ++i) {
    ValidatorId author = authors[static_cast<size_t>(i - from - 1)];
    const Certificate* cert = dag.GetCert(WaveAnchorRound(i), author);
    bool ordered = cert != nullptr && committed_.count(cert->header_digest) != 0;
    schedule_.RecordOutcome(i, author, ordered);
  }
}

void Bullshark::PruneCommitted(Round gc_round) {
  for (auto it = committed_by_round_.begin();
       it != committed_by_round_.end() && it->first < gc_round;) {
    for (const Digest& d : it->second) {
      committed_.erase(d);
      if (store_ != nullptr) {
        store_->Erase(BullsharkCommitKey(d));
      }
    }
    it = committed_by_round_.erase(it);
  }
}

}  // namespace nt
